#include "sim/pe_pool.hpp"

#include <stdexcept>
#include <utility>

namespace masc {

namespace {
/// Idle spins before a worker parks on the condition variable. Row
/// phases arrive back-to-back within a cycle, so spinning briefly wins;
/// between simulated runs the pool sits parked and costs nothing.
constexpr unsigned kSpinBudget = 4096;
}  // namespace

PEWorkerPool::PEWorkerPool(unsigned threads)
    : nthreads_(threads),
      slots_(threads > 1 ? threads - 1 : 0),
      chunk_errors_(threads > 1 ? threads - 1 : 0) {
  if (threads < 2)
    throw std::invalid_argument("PEWorkerPool needs at least 2 threads");
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

PEWorkerPool::~PEWorkerPool() {
  {
    // Under the mutex so no worker can re-check its predicate between
    // our store and notify and then sleep through the wakeup.
    std::lock_guard<std::mutex> lk(mu_);
    stop_.store(true, std::memory_order_release);
    // Unpublished-task epoch bump so spinners drop out of their
    // inner wait loop and observe stop_.
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void PEWorkerPool::dispatch(std::size_t n, TaskFn fn, void* ctx) {
  fn_ = fn;
  ctx_ = ctx;
  n_ = n;
  // seq_cst publish: pairs with the workers' seq_cst check in the park
  // path (see worker_main) so a worker either sees the new epoch before
  // sleeping or has already bumped sleepers_ and we notify it.
  const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (sleepers_.load(std::memory_order_seq_cst) != 0) {
    std::lock_guard<std::mutex> lk(mu_);  // fence against the park window
    cv_.notify_all();
  }

  // Coordinator takes chunk 0 inline. Workers run chunks 1..T-1.
  std::exception_ptr local_error;
  const std::size_t lo = chunk_begin(0, n);
  const std::size_t hi = chunk_begin(1, n);
  try {
    if (hi > lo) fn(ctx, lo, hi);
  } catch (...) {
    local_error = std::current_exception();
  }

  // Join barrier: every slot must report before we return or rethrow —
  // the task context lives on this stack frame.
  for (auto& slot : slots_) {
    while (slot.done.load(std::memory_order_acquire) != e) {
      // The wait is bounded by per-chunk skew (chunks are equal-sized),
      // but yield anyway: on hosts with fewer cores than threads the
      // worker needs this CPU to finish its chunk at all.
      std::this_thread::yield();
    }
  }

  // Deterministic error selection: lowest chunk index wins, matching
  // the serial loop which would have faulted at the lowest PE first.
  if (local_error) std::rethrow_exception(local_error);
  for (auto& err : chunk_errors_) {
    if (err) {
      std::exception_ptr e2 = std::exchange(err, nullptr);
      std::rethrow_exception(e2);
    }
  }
}

void PEWorkerPool::worker_main(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for a new epoch, spinning first, then parking.
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    unsigned spins = 0;
    while (e == seen) {
      if (++spins >= kSpinBudget) {
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        // Re-check after advertising ourselves as a sleeper: if the
        // dispatcher published in the window, it will either see our
        // increment and notify, or we see its epoch here and skip the
        // sleep entirely. Either way no wakeup is lost.
        e = epoch_.load(std::memory_order_seq_cst);
        if (e == seen) {
          std::unique_lock<std::mutex> lk(mu_);
          cv_.wait(lk, [&] {
            e = epoch_.load(std::memory_order_acquire);
            return e != seen || stop_.load(std::memory_order_acquire);
          });
        }
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        spins = 0;
      } else {
        std::this_thread::yield();
        e = epoch_.load(std::memory_order_acquire);
      }
    }
    seen = e;
    if (stop_.load(std::memory_order_acquire)) return;

    const std::size_t lo = chunk_begin(slot + 1, n_);
    const std::size_t hi = chunk_begin(slot + 2, n_);
    try {
      if (hi > lo) fn_(ctx_, lo, hi);
    } catch (...) {
      chunk_errors_[slot] = std::current_exception();
    }
    slots_[slot].done.store(seen, std::memory_order_release);
  }
}

}  // namespace masc
