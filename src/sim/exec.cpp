#include "sim/exec.hpp"

#include <vector>

#include "common/bits.hpp"
#include "sim/network/trees.hpp"

namespace masc {

namespace detail {

Word alu_op(AluFunct f, Word a, Word b, unsigned width) {
  const Word mask = low_mask(width);
  a &= mask;
  b &= mask;
  // Shift amounts use the low bits of b, modulo the word width.
  const unsigned sh = static_cast<unsigned>(b) % width;
  switch (f) {
    case AluFunct::kAdd: return (a + b) & mask;
    case AluFunct::kSub: return (a - b) & mask;
    case AluFunct::kAnd: return a & b;
    case AluFunct::kOr: return a | b;
    case AluFunct::kXor: return a ^ b;
    case AluFunct::kNor: return ~(a | b) & mask;
    case AluFunct::kSll: return (a << sh) & mask;
    case AluFunct::kSrl: return a >> sh;
    case AluFunct::kSra:
      return static_cast<Word>(sign_extend(a, width) >> sh) & mask;
    case AluFunct::kSlt:
      return sign_extend(a, width) < sign_extend(b, width) ? 1 : 0;
    case AluFunct::kSltu: return a < b ? 1 : 0;
    case AluFunct::kMul:
      return static_cast<Word>(static_cast<DWord>(a) * b) & mask;
    case AluFunct::kDiv:
      // Division by zero yields all-ones (no traps in this machine).
      if (b == 0) return mask;
      return static_cast<Word>(
                 sign_extend(a, width) / sign_extend(b, width)) & mask;
    case AluFunct::kRem:
      if (b == 0) return a;
      return static_cast<Word>(
                 sign_extend(a, width) % sign_extend(b, width)) & mask;
    case AluFunct::kDivU:
      if (b == 0) return mask;
      return a / b;
    case AluFunct::kRemU:
      if (b == 0) return a;
      return a % b;
    case AluFunct::kMov: return a;
    case AluFunct::kCount: break;
  }
  return 0;
}

bool cmp_op(CmpFunct f, Word a, Word b, unsigned width) {
  const SWord sa = sign_extend(a, width), sb = sign_extend(b, width);
  const Word ua = truncate(a, width), ub = truncate(b, width);
  switch (f) {
    case CmpFunct::kEq: return ua == ub;
    case CmpFunct::kNe: return ua != ub;
    case CmpFunct::kLt: return sa < sb;
    case CmpFunct::kLe: return sa <= sb;
    case CmpFunct::kLtu: return ua < ub;
    case CmpFunct::kLeu: return ua <= ub;
    case CmpFunct::kGt: return sa > sb;
    case CmpFunct::kGe: return sa >= sb;
    case CmpFunct::kGtu: return ua > ub;
    case CmpFunct::kGeu: return ua >= ub;
    case CmpFunct::kCount: break;
  }
  return false;
}

bool flag_op(FlagFunct f, bool a, bool b) {
  switch (f) {
    case FlagFunct::kAnd: return a && b;
    case FlagFunct::kOr: return a || b;
    case FlagFunct::kXor: return a != b;
    case FlagFunct::kAndNot: return a && !b;
    case FlagFunct::kNot: return !a;
    case FlagFunct::kMov: return a;
    case FlagFunct::kSet: return true;
    case FlagFunct::kClr: return false;
    case FlagFunct::kCount: break;
  }
  return false;
}

}  // namespace detail

namespace {

using detail::alu_op;
using detail::cmp_op;
using detail::flag_op;

/// The activity vector of a masked parallel/reduction instruction.
std::vector<std::uint8_t> active_pes(const ArchState& st, ThreadId t, RegNum mask) {
  const auto p = st.config().num_pes;
  std::vector<std::uint8_t> act(p);
  for (PEIndex pe = 0; pe < p; ++pe) act[pe] = st.pflag(t, mask, pe) ? 1 : 0;
  return act;
}

net::ReduceOp reduce_op_of(RedFunct f) {
  switch (f) {
    case RedFunct::kAnd: return net::ReduceOp::kAnd;
    case RedFunct::kOr: return net::ReduceOp::kOr;
    case RedFunct::kMax: return net::ReduceOp::kMax;
    case RedFunct::kMin: return net::ReduceOp::kMin;
    case RedFunct::kMaxU: return net::ReduceOp::kMaxU;
    case RedFunct::kMinU: return net::ReduceOp::kMinU;
    case RedFunct::kSum: return net::ReduceOp::kSum;
    case RedFunct::kSumU: return net::ReduceOp::kSumU;
    default: return net::ReduceOp::kCountFlags;
  }
}

/// Execute a parallel-class instruction across the PE array.
void exec_parallel(ArchState& st, ThreadId t, const Instruction& in) {
  const auto& cfg = st.config();
  const unsigned w = cfg.word_width;
  const auto act = active_pes(st, t, in.mask);

  for (PEIndex pe = 0; pe < cfg.num_pes; ++pe) {
    if (!act[pe]) continue;
    switch (in.op) {
      case Opcode::kPAlu:
        st.set_preg(t, in.rd, pe,
                    alu_op(static_cast<AluFunct>(in.funct),
                           st.preg(t, in.rs, pe), st.preg(t, in.rt, pe), w));
        break;
      case Opcode::kPAluS:
        // Broadcast-scalar form: the scalar value is the LEFT operand.
        st.set_preg(t, in.rd, pe,
                    alu_op(static_cast<AluFunct>(in.funct),
                           st.sreg(t, in.rs), st.preg(t, in.rt, pe), w));
        break;
      case Opcode::kPImm: {
        const Word imm = truncate(static_cast<Word>(in.imm), w);
        switch (static_cast<PImmOp>(in.funct)) {
          case PImmOp::kAddi:
            st.set_preg(t, in.rd, pe, alu_op(AluFunct::kAdd, st.preg(t, in.rs, pe), imm, w));
            break;
          case PImmOp::kAndi:
            st.set_preg(t, in.rd, pe, st.preg(t, in.rs, pe) & imm);
            break;
          case PImmOp::kOri:
            st.set_preg(t, in.rd, pe, st.preg(t, in.rs, pe) | imm);
            break;
          case PImmOp::kXori:
            st.set_preg(t, in.rd, pe, st.preg(t, in.rs, pe) ^ imm);
            break;
          case PImmOp::kSlli:
            st.set_preg(t, in.rd, pe, alu_op(AluFunct::kSll, st.preg(t, in.rs, pe), imm, w));
            break;
          case PImmOp::kSrli:
            st.set_preg(t, in.rd, pe, alu_op(AluFunct::kSrl, st.preg(t, in.rs, pe), imm, w));
            break;
          case PImmOp::kSrai:
            st.set_preg(t, in.rd, pe, alu_op(AluFunct::kSra, st.preg(t, in.rs, pe), imm, w));
            break;
          case PImmOp::kMovi:
            st.set_preg(t, in.rd, pe, imm);
            break;
          case PImmOp::kCount:
            break;
        }
        break;
      }
      case Opcode::kPCmp:
        st.set_pflag(t, in.rd, pe,
                     cmp_op(static_cast<CmpFunct>(in.funct),
                            st.preg(t, in.rs, pe), st.preg(t, in.rt, pe), w));
        break;
      case Opcode::kPCmpS:
        st.set_pflag(t, in.rd, pe,
                     cmp_op(static_cast<CmpFunct>(in.funct),
                            st.sreg(t, in.rs), st.preg(t, in.rt, pe), w));
        break;
      case Opcode::kPFlag:
        st.set_pflag(t, in.rd, pe,
                     flag_op(static_cast<FlagFunct>(in.funct),
                             st.pflag(t, in.rs, pe), st.pflag(t, in.rt, pe)));
        break;
      case Opcode::kPLw: {
        const Addr a = truncate(st.preg(t, in.rs, pe) +
                                    static_cast<Word>(in.imm), 32);
        st.set_preg(t, in.rd, pe, st.local_mem(pe, a));
        break;
      }
      case Opcode::kPSw: {
        const Addr a = truncate(st.preg(t, in.rs, pe) +
                                    static_cast<Word>(in.imm), 32);
        st.set_local_mem(pe, a, st.preg(t, in.rd, pe));
        break;
      }
      case Opcode::kPMov:
        if (static_cast<PMovFunct>(in.funct) == PMovFunct::kBcast)
          st.set_preg(t, in.rd, pe, st.sreg(t, in.rs));
        else
          st.set_preg(t, in.rd, pe, truncate(pe, st.config().word_width));
        break;
      default:
        throw SimulationError("exec_parallel: not a parallel opcode");
    }
  }
}

/// Execute a reduction-class instruction (uses the reduction network).
void exec_reduction(ArchState& st, ThreadId t, const Instruction& in) {
  const auto& cfg = st.config();
  const unsigned w = cfg.word_width;
  const auto act = active_pes(st, t, in.mask);

  if (in.op == Opcode::kRSel) {
    // Multiple-response resolver: parallel-prefix over the flag vector.
    std::vector<std::uint8_t> flags(cfg.num_pes);
    for (PEIndex pe = 0; pe < cfg.num_pes; ++pe)
      flags[pe] = st.pflag(t, in.rs, pe) ? 1 : 0;
    const auto first = net::resolve_first(flags, act);
    const auto f = static_cast<RSelFunct>(in.funct);
    for (PEIndex pe = 0; pe < cfg.num_pes; ++pe) {
      if (!act[pe]) continue;
      if (f == RSelFunct::kFirst)
        st.set_pflag(t, in.rd, pe, first[pe] != 0);
      else  // kClearFirst: source flags minus the first responder
        st.set_pflag(t, in.rd, pe, flags[pe] && !first[pe]);
    }
    return;
  }

  const auto f = static_cast<RedFunct>(in.funct);
  switch (f) {
    case RedFunct::kCount_:
    case RedFunct::kAny: {
      std::vector<Word> flags(cfg.num_pes);
      for (PEIndex pe = 0; pe < cfg.num_pes; ++pe)
        flags[pe] = st.pflag(t, in.rs, pe) ? 1 : 0;
      // The response counter's adder tree is wide enough for an exact
      // count (paper §6.4); the architectural result is then truncated to
      // the word width when written to the destination register.
      const Word count = net::tree_reduce(net::ReduceOp::kCountFlags, flags, act, 32);
      st.set_sreg(t, in.rd, f == RedFunct::kAny ? (count != 0 ? 1 : 0) : count);
      break;
    }
    case RedFunct::kFAnd:
    case RedFunct::kFOr: {
      std::vector<Word> flags(cfg.num_pes);
      for (PEIndex pe = 0; pe < cfg.num_pes; ++pe)
        flags[pe] = st.pflag(t, in.rs, pe) ? 1 : 0;
      const auto op = f == RedFunct::kFAnd ? net::ReduceOp::kAnd : net::ReduceOp::kOr;
      const Word r = net::tree_reduce(op, flags, act, 1);
      st.set_sflag(t, in.rd, r != 0);
      break;
    }
    case RedFunct::kGetPe: {
      const Word idx = st.sreg(t, in.rt);
      if (idx >= cfg.num_pes)
        throw SimulationError("getpe: PE index out of range");
      // Routed through the OR tree with a single enabled leaf; the
      // activity mask does not gate it (the CU selects the leaf directly).
      st.set_sreg(t, in.rd, st.preg(t, in.rs, idx));
      break;
    }
    default: {
      std::vector<Word> vals(cfg.num_pes);
      for (PEIndex pe = 0; pe < cfg.num_pes; ++pe)
        vals[pe] = st.preg(t, in.rs, pe);
      st.set_sreg(t, in.rd, net::tree_reduce(reduce_op_of(f), vals, act, w));
      break;
    }
  }
}

}  // namespace

ExecResult execute(ArchState& st, ThreadId t, Addr pc, const Instruction& in) {
  ExecResult res;
  res.next_pc = pc + 1;
  const auto& cfg = st.config();
  const unsigned w = cfg.word_width;

  switch (in.instr_class()) {
    case InstrClass::kParallel:
      exec_parallel(st, t, in);
      return res;
    case InstrClass::kReduction:
      exec_reduction(st, t, in);
      return res;
    case InstrClass::kScalar:
      break;
  }

  switch (in.op) {
    case Opcode::kSys:
      if (in.is_halt()) res.halt = true;
      break;

    case Opcode::kSAlu:
      st.set_sreg(t, in.rd,
                  alu_op(static_cast<AluFunct>(in.funct), st.sreg(t, in.rs),
                         st.sreg(t, in.rt), w));
      break;

    case Opcode::kSCmp:
      st.set_sflag(t, in.rd,
                   cmp_op(static_cast<CmpFunct>(in.funct), st.sreg(t, in.rs),
                          st.sreg(t, in.rt), w));
      break;

    case Opcode::kSFlag:
      st.set_sflag(t, in.rd,
                   flag_op(static_cast<FlagFunct>(in.funct),
                           st.sflag(t, in.rs), st.sflag(t, in.rt)));
      break;

    case Opcode::kAddi:
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) + static_cast<Word>(in.imm));
      break;
    case Opcode::kAndi:
      // Logical immediates zero-extend their 16-bit field (MIPS-style),
      // so lui+ori can synthesize any 32-bit constant.
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) & (static_cast<Word>(in.imm) & 0xFFFFu));
      break;
    case Opcode::kOri:
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) | (static_cast<Word>(in.imm) & 0xFFFFu));
      break;
    case Opcode::kXori:
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) ^ (static_cast<Word>(in.imm) & 0xFFFFu));
      break;
    case Opcode::kSlti:
      st.set_sreg(t, in.rd,
                  sign_extend(st.sreg(t, in.rs), w) < in.imm ? 1 : 0);
      break;
    case Opcode::kSltiu:
      st.set_sreg(t, in.rd,
                  truncate(st.sreg(t, in.rs), w) <
                          truncate(static_cast<Word>(in.imm), w)
                      ? 1 : 0);
      break;
    case Opcode::kSlli:
      st.set_sreg(t, in.rd, alu_op(AluFunct::kSll, st.sreg(t, in.rs),
                                   static_cast<Word>(in.imm), w));
      break;
    case Opcode::kSrli:
      st.set_sreg(t, in.rd, alu_op(AluFunct::kSrl, st.sreg(t, in.rs),
                                   static_cast<Word>(in.imm), w));
      break;
    case Opcode::kSrai:
      st.set_sreg(t, in.rd, alu_op(AluFunct::kSra, st.sreg(t, in.rs),
                                   static_cast<Word>(in.imm), w));
      break;
    case Opcode::kLui:
      st.set_sreg(t, in.rd, static_cast<Word>(in.imm) << 16);
      break;

    case Opcode::kLw:
      st.set_sreg(t, in.rd,
                  st.scalar_mem(st.sreg(t, in.rs) + static_cast<Word>(in.imm)));
      break;
    case Opcode::kSw:
      st.set_scalar_mem(st.sreg(t, in.rs) + static_cast<Word>(in.imm),
                        st.sreg(t, in.rd));
      break;

    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      const Word a = st.sreg(t, in.rd), b = st.sreg(t, in.rs);
      bool taken = false;
      switch (in.op) {
        case Opcode::kBeq: taken = cmp_op(CmpFunct::kEq, a, b, w); break;
        case Opcode::kBne: taken = cmp_op(CmpFunct::kNe, a, b, w); break;
        case Opcode::kBlt: taken = cmp_op(CmpFunct::kLt, a, b, w); break;
        case Opcode::kBge: taken = cmp_op(CmpFunct::kGe, a, b, w); break;
        case Opcode::kBltu: taken = cmp_op(CmpFunct::kLtu, a, b, w); break;
        case Opcode::kBgeu: taken = cmp_op(CmpFunct::kGeu, a, b, w); break;
        default: break;
      }
      if (taken) {
        res.next_pc = static_cast<Addr>(
            static_cast<std::int64_t>(pc) + 1 + in.imm);
        res.taken_branch = true;
      }
      break;
    }
    case Opcode::kBfset:
    case Opcode::kBfclr: {
      const bool set = st.sflag(t, in.rd);
      if (set == (in.op == Opcode::kBfset)) {
        res.next_pc = static_cast<Addr>(
            static_cast<std::int64_t>(pc) + 1 + in.imm);
        res.taken_branch = true;
      }
      break;
    }
    case Opcode::kJ:
      res.next_pc = static_cast<Addr>(in.imm);
      res.taken_branch = true;
      break;
    case Opcode::kJal:
      st.set_sreg(t, in.rd, pc + 1);
      res.next_pc = static_cast<Addr>(in.imm);
      res.taken_branch = true;
      break;
    case Opcode::kJr:
      res.next_pc = st.sreg(t, in.rs);
      res.taken_branch = true;
      break;

    case Opcode::kTCtl:
      switch (static_cast<TCtlFunct>(in.funct)) {
        case TCtlFunct::kSpawn: {
          const ThreadId child = st.allocate_thread(st.sreg(t, in.rs));
          res.spawned = child;
          st.set_sreg(t, in.rd,
                      child == ArchState::kNoThread ? low_mask(w)
                                                    : truncate(child, w));
          break;
        }
        case TCtlFunct::kJoin: {
          const Word target = st.sreg(t, in.rs);
          if (target >= st.num_threads())
            throw SimulationError("tjoin: thread id out of range");
          if (st.thread(target).state != ThreadState::kFree) {
            res.blocked_join = true;
            res.join_target = target;
          }
          break;
        }
        case TCtlFunct::kExit:
          res.exited = true;
          break;
        case TCtlFunct::kTid:
          st.set_sreg(t, in.rd, truncate(t, w));
          break;
        case TCtlFunct::kNPes:
          st.set_sreg(t, in.rd, truncate(cfg.num_pes, w));
          break;
        case TCtlFunct::kNThreads:
          st.set_sreg(t, in.rd, truncate(st.num_threads(), w));
          break;
        case TCtlFunct::kCount:
          break;
      }
      break;

    case Opcode::kTMov: {
      const Word target = st.sreg(t, in.rt);
      if (target >= st.num_threads())
        throw SimulationError("tput/tget: thread id out of range");
      if (static_cast<TMovFunct>(in.funct) == TMovFunct::kPut)
        st.set_sreg(target, in.rd, st.sreg(t, in.rs));
      else
        st.set_sreg(t, in.rd, st.sreg(target, in.rs));
      break;
    }

    default:
      throw SimulationError("execute: unhandled opcode");
  }
  return res;
}

}  // namespace masc
