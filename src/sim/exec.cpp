#include "sim/exec.hpp"

#include <atomic>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "sim/network/trees.hpp"
#include "sim/pe_pool.hpp"

namespace masc {

namespace detail {

Word alu_op(AluFunct f, Word a, Word b, unsigned width) {
  const Word mask = low_mask(width);
  a &= mask;
  b &= mask;
  // Shift amounts use the low bits of b, modulo the word width.
  const unsigned sh = static_cast<unsigned>(b) % width;
  switch (f) {
    case AluFunct::kAdd: return (a + b) & mask;
    case AluFunct::kSub: return (a - b) & mask;
    case AluFunct::kAnd: return a & b;
    case AluFunct::kOr: return a | b;
    case AluFunct::kXor: return a ^ b;
    case AluFunct::kNor: return ~(a | b) & mask;
    case AluFunct::kSll: return (a << sh) & mask;
    case AluFunct::kSrl: return a >> sh;
    case AluFunct::kSra:
      return static_cast<Word>(sign_extend(a, width) >> sh) & mask;
    case AluFunct::kSlt:
      return sign_extend(a, width) < sign_extend(b, width) ? 1 : 0;
    case AluFunct::kSltu: return a < b ? 1 : 0;
    case AluFunct::kMul:
      return static_cast<Word>(static_cast<DWord>(a) * b) & mask;
    case AluFunct::kDiv:
      // Division by zero yields all-ones (no traps in this machine).
      if (b == 0) return mask;
      return static_cast<Word>(
                 sign_extend(a, width) / sign_extend(b, width)) & mask;
    case AluFunct::kRem:
      if (b == 0) return a;
      return static_cast<Word>(
                 sign_extend(a, width) % sign_extend(b, width)) & mask;
    case AluFunct::kDivU:
      if (b == 0) return mask;
      return a / b;
    case AluFunct::kRemU:
      if (b == 0) return a;
      return a % b;
    case AluFunct::kMov: return a;
    case AluFunct::kCount: break;
  }
  return 0;
}

bool cmp_op(CmpFunct f, Word a, Word b, unsigned width) {
  const SWord sa = sign_extend(a, width), sb = sign_extend(b, width);
  const Word ua = truncate(a, width), ub = truncate(b, width);
  switch (f) {
    case CmpFunct::kEq: return ua == ub;
    case CmpFunct::kNe: return ua != ub;
    case CmpFunct::kLt: return sa < sb;
    case CmpFunct::kLe: return sa <= sb;
    case CmpFunct::kLtu: return ua < ub;
    case CmpFunct::kLeu: return ua <= ub;
    case CmpFunct::kGt: return sa > sb;
    case CmpFunct::kGe: return sa >= sb;
    case CmpFunct::kGtu: return ua > ub;
    case CmpFunct::kGeu: return ua >= ub;
    case CmpFunct::kCount: break;
  }
  return false;
}

bool flag_op(FlagFunct f, bool a, bool b) {
  switch (f) {
    case FlagFunct::kAnd: return a && b;
    case FlagFunct::kOr: return a || b;
    case FlagFunct::kXor: return a != b;
    case FlagFunct::kAndNot: return a && !b;
    case FlagFunct::kNot: return !a;
    case FlagFunct::kMov: return a;
    case FlagFunct::kSet: return true;
    case FlagFunct::kClr: return false;
    case FlagFunct::kCount: break;
  }
  return false;
}

}  // namespace detail

namespace {

using detail::alu_op;
using detail::cmp_op;
using detail::flag_op;

/// The activity row of a masked parallel/reduction instruction: flag 0 is
/// hardwired to 1, so an unmasked instruction reads the all-ones row.
/// Bounds-checked once per operand (not per PE): decode() yields 5-bit
/// register and 3-bit mask fields, which can exceed the configured file
/// sizes, and the raw row pointers would otherwise read out of bounds.
const std::uint8_t* activity_row(const ArchState& st, ThreadId t, RegNum mask) {
  if (mask == 0) return st.ones_row();
  expect(mask < st.config().num_flag_regs, "parallel flag out of range");
  return st.pflag_row(t, mask);
}

/// Parallel-register source row: register 0 is hardwired to 0.
const Word* value_row(const ArchState& st, ThreadId t, RegNum r) {
  if (r == 0) return st.zero_row();
  expect(r < st.config().num_parallel_regs, "parallel register out of range");
  return st.preg_row(t, r);
}

/// Run `body(lo, hi)` over the PE index space [0, p): fanned out across
/// the pool's fixed chunks when one is attached and the array is large
/// enough to amortize the fork/join barrier, inline otherwise. Bodies
/// are elementwise over the SoA rows — element pe is read and written
/// only by the chunk owning pe — so both paths compute identical state
/// (docs/THREADING.md spells out the contract).
template <typename Body>
void rows(PEWorkerPool* pool, std::uint32_t p, Body&& body) {
  if (pool != nullptr && p >= kRowFanoutMinPes)
    pool->run(p, body);
  else
    body(std::size_t{0}, std::size_t{p});
}

net::ReduceOp reduce_op_of(RedFunct f) {
  switch (f) {
    case RedFunct::kAnd: return net::ReduceOp::kAnd;
    case RedFunct::kOr: return net::ReduceOp::kOr;
    case RedFunct::kMax: return net::ReduceOp::kMax;
    case RedFunct::kMin: return net::ReduceOp::kMin;
    case RedFunct::kMaxU: return net::ReduceOp::kMaxU;
    case RedFunct::kMinU: return net::ReduceOp::kMinU;
    case RedFunct::kSum: return net::ReduceOp::kSum;
    case RedFunct::kSumU: return net::ReduceOp::kSumU;
    default: return net::ReduceOp::kCountFlags;
  }
}

/// Execute a parallel-class instruction across the PE array.
///
/// The per-PE state is stored structure-of-arrays (one contiguous row per
/// (thread, register)), so each opcode runs as a tight row loop the
/// compiler can vectorize, rather than a per-PE dispatch through the
/// bounds-checked scalar accessors. Writes to hardwired register/flag 0
/// have no architectural effect, so those loops are skipped outright —
/// except PLW, whose address bounds checks must still fire.
///
/// With a pool attached the row loops run chunk-parallel via rows();
/// every other effect of the instruction (operand checks, scalar reads)
/// happens before the fan-out, on the coordinator.
void exec_parallel(ArchState& st, ThreadId t, const Instruction& in,
                   PEWorkerPool* pool) {
  const auto& cfg = st.config();
  const unsigned w = cfg.word_width;
  const std::uint32_t p = cfg.num_pes;
  const std::uint8_t* const act = activity_row(st, t, in.mask);

  // Mirror the range checks the scalar write accessors performed. These
  // fire unconditionally — even when the activity vector is all zeros, in
  // which case the seed's per-PE accessors never ran their check. That is
  // deliberately stricter: an encodable but out-of-range field in a
  // program word faults deterministically instead of depending on mask
  // contents. (Source operands are checked the same way, in value_row()
  // and activity_row().)
  auto check_preg = [&](RegNum r) {
    expect(r < cfg.num_parallel_regs, "parallel register out of range");
  };
  auto check_pflag = [&](RegNum f) {
    expect(f < cfg.num_flag_regs, "parallel flag out of range");
  };

  switch (in.op) {
    case Opcode::kPAlu: {
      if (in.rd == 0) return;
      check_preg(in.rd);
      const auto f = static_cast<AluFunct>(in.funct);
      const Word* const a = value_row(st, t, in.rs);
      const Word* const b = value_row(st, t, in.rt);
      Word* const d = st.preg_row(t, in.rd);
      rows(pool, p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe)
          if (act[pe]) d[pe] = alu_op(f, a[pe], b[pe], w);
      });
      return;
    }
    case Opcode::kPAluS: {
      // Broadcast-scalar form: the scalar value is the LEFT operand.
      if (in.rd == 0) return;
      check_preg(in.rd);
      const auto f = static_cast<AluFunct>(in.funct);
      const Word s = st.sreg(t, in.rs);
      const Word* const b = value_row(st, t, in.rt);
      Word* const d = st.preg_row(t, in.rd);
      rows(pool, p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe)
          if (act[pe]) d[pe] = alu_op(f, s, b[pe], w);
      });
      return;
    }
    case Opcode::kPImm: {
      if (in.rd == 0) return;
      check_preg(in.rd);
      const Word imm = truncate(static_cast<Word>(in.imm), w);
      const Word* const a = value_row(st, t, in.rs);
      Word* const d = st.preg_row(t, in.rd);
      // The funct switch sits inside the chunk body: one extra branch
      // per chunk, and each case keeps its tight vectorizable loop.
      rows(pool, p, [&](std::size_t lo, std::size_t hi) {
        switch (static_cast<PImmOp>(in.funct)) {
          case PImmOp::kAddi:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = alu_op(AluFunct::kAdd, a[pe], imm, w);
            break;
          case PImmOp::kAndi:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = a[pe] & imm;
            break;
          case PImmOp::kOri:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = a[pe] | imm;
            break;
          case PImmOp::kXori:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = a[pe] ^ imm;
            break;
          case PImmOp::kSlli:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = alu_op(AluFunct::kSll, a[pe], imm, w);
            break;
          case PImmOp::kSrli:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = alu_op(AluFunct::kSrl, a[pe], imm, w);
            break;
          case PImmOp::kSrai:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = alu_op(AluFunct::kSra, a[pe], imm, w);
            break;
          case PImmOp::kMovi:
            for (std::size_t pe = lo; pe < hi; ++pe)
              if (act[pe]) d[pe] = imm;
            break;
          case PImmOp::kCount:
            break;
        }
      });
      return;
    }
    case Opcode::kPCmp: {
      if (in.rd == 0) return;
      check_pflag(in.rd);
      const auto f = static_cast<CmpFunct>(in.funct);
      const Word* const a = value_row(st, t, in.rs);
      const Word* const b = value_row(st, t, in.rt);
      std::uint8_t* const d = st.pflag_row(t, in.rd);
      rows(pool, p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe)
          if (act[pe]) d[pe] = cmp_op(f, a[pe], b[pe], w) ? 1 : 0;
      });
      return;
    }
    case Opcode::kPCmpS: {
      if (in.rd == 0) return;
      check_pflag(in.rd);
      const auto f = static_cast<CmpFunct>(in.funct);
      const Word s = st.sreg(t, in.rs);
      const Word* const b = value_row(st, t, in.rt);
      std::uint8_t* const d = st.pflag_row(t, in.rd);
      rows(pool, p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe)
          if (act[pe]) d[pe] = cmp_op(f, s, b[pe], w) ? 1 : 0;
      });
      return;
    }
    case Opcode::kPFlag: {
      if (in.rd == 0) return;
      check_pflag(in.rd);
      const auto f = static_cast<FlagFunct>(in.funct);
      const std::uint8_t* const a = activity_row(st, t, in.rs);
      const std::uint8_t* const b = activity_row(st, t, in.rt);
      std::uint8_t* const d = st.pflag_row(t, in.rd);
      rows(pool, p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe)
          if (act[pe]) d[pe] = flag_op(f, a[pe] != 0, b[pe] != 0) ? 1 : 0;
      });
      return;
    }
    case Opcode::kPLw: {
      if (in.rd != 0) check_preg(in.rd);
      const Word* const base = value_row(st, t, in.rs);
      Word* const d = in.rd != 0 ? st.preg_row(t, in.rd) : nullptr;
      // The only row loops that can fault mid-array are PLW/PSW address
      // checks. The serial loop throws at the lowest faulting PE with
      // all lower PEs already applied; to keep that state bit-identical,
      // the pooled path first validates addresses read-only in parallel
      // and, if anything faults, re-runs the whole op serially so the
      // partial effects and the thrown message match the serial machine
      // exactly.
      auto serial = [&] {
        for (PEIndex pe = 0; pe < p; ++pe) {
          if (!act[pe]) continue;
          const Addr a = truncate(base[pe] + static_cast<Word>(in.imm), 32);
          expect(a < cfg.local_mem_bytes, "local memory read out of range");
          if (d) d[pe] = st.local_mem_row(pe)[a];
        }
      };
      if (pool == nullptr || p < kRowFanoutMinPes) return serial();
      std::atomic<bool> fault{false};
      pool->run(p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe) {
          if (!act[pe]) continue;
          const Addr a = truncate(base[pe] + static_cast<Word>(in.imm), 32);
          if (a >= cfg.local_mem_bytes)
            fault.store(true, std::memory_order_relaxed);
        }
      });
      if (fault.load(std::memory_order_relaxed)) return serial();
      pool->run(p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe) {
          if (!act[pe]) continue;
          const Addr a = truncate(base[pe] + static_cast<Word>(in.imm), 32);
          if (d) d[pe] = st.local_mem_row(static_cast<PEIndex>(pe))[a];
        }
      });
      return;
    }
    case Opcode::kPSw: {
      const Word* const base = value_row(st, t, in.rs);
      const Word* const src = value_row(st, t, in.rd);
      auto serial = [&] {
        for (PEIndex pe = 0; pe < p; ++pe) {
          if (!act[pe]) continue;
          const Addr a = truncate(base[pe] + static_cast<Word>(in.imm), 32);
          expect(a < cfg.local_mem_bytes, "local memory write out of range");
          st.local_mem_row(pe)[a] = src[pe];
        }
      };
      if (pool == nullptr || p < kRowFanoutMinPes) return serial();
      std::atomic<bool> fault{false};
      pool->run(p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe) {
          if (!act[pe]) continue;
          const Addr a = truncate(base[pe] + static_cast<Word>(in.imm), 32);
          if (a >= cfg.local_mem_bytes)
            fault.store(true, std::memory_order_relaxed);
        }
      });
      if (fault.load(std::memory_order_relaxed)) return serial();
      pool->run(p, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pe = lo; pe < hi; ++pe) {
          if (!act[pe]) continue;
          const Addr a = truncate(base[pe] + static_cast<Word>(in.imm), 32);
          st.local_mem_row(static_cast<PEIndex>(pe))[a] = src[pe];
        }
      });
      return;
    }
    case Opcode::kPMov: {
      if (in.rd == 0) return;
      check_preg(in.rd);
      Word* const d = st.preg_row(t, in.rd);
      if (static_cast<PMovFunct>(in.funct) == PMovFunct::kBcast) {
        const Word s = st.sreg(t, in.rs);
        rows(pool, p, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t pe = lo; pe < hi; ++pe)
            if (act[pe]) d[pe] = s;
        });
      } else {
        rows(pool, p, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t pe = lo; pe < hi; ++pe)
            if (act[pe]) d[pe] = truncate(static_cast<Word>(pe), w);
        });
      }
      return;
    }
    default:
      throw SimulationError("exec_parallel: not a parallel opcode");
  }
}

/// Execute a reduction-class instruction (uses the reduction network).
/// Operand vectors are passed to the network as spans over the SoA
/// register rows — no per-instruction gather copies.
///
/// Reductions and the responder resolver are GLOBAL phases: they fold
/// the whole array in a fixed tree order, so they always run on the
/// coordinator regardless of pool. Only RSEL's elementwise write-back
/// loop (after `first` is known) fans out.
void exec_reduction(ArchState& st, ThreadId t, const Instruction& in,
                    PEWorkerPool* pool) {
  const auto& cfg = st.config();
  const unsigned w = cfg.word_width;
  const std::uint32_t p = cfg.num_pes;
  const std::span<const std::uint8_t> act{activity_row(st, t, in.mask), p};

  if (in.op == Opcode::kRSel) {
    // Multiple-response resolver: parallel-prefix over the flag vector.
    const std::span<const std::uint8_t> flags{activity_row(st, t, in.rs), p};
    // Index form of the resolver: no one-hot scratch vector on this
    // per-instruction path.
    const std::size_t first = net::resolve_first_index(flags, act);
    const auto f = static_cast<RSelFunct>(in.funct);
    if (in.rd == 0) return;  // flag 0 is hardwired; writes are dropped
    expect(in.rd < cfg.num_flag_regs, "parallel flag out of range");
    std::uint8_t* const d = st.pflag_row(t, in.rd);
    rows(pool, p, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t pe = lo; pe < hi; ++pe) {
        if (!act[pe]) continue;
        if (f == RSelFunct::kFirst)
          d[pe] = pe == first ? 1 : 0;
        else  // kClearFirst: source flags minus the first responder
          d[pe] = (flags[pe] && pe != first) ? 1 : 0;
      }
    });
    return;
  }

  const auto f = static_cast<RedFunct>(in.funct);
  switch (f) {
    case RedFunct::kCount_:
    case RedFunct::kAny: {
      const std::span<const std::uint8_t> flags{activity_row(st, t, in.rs), p};
      // The response counter's adder tree is wide enough for an exact
      // count (paper §6.4); the architectural result is then truncated to
      // the word width when written to the destination register.
      const Word count = net::flag_reduce(net::ReduceOp::kCountFlags, flags, act);
      st.set_sreg(t, in.rd, f == RedFunct::kAny ? (count != 0 ? 1 : 0) : count);
      break;
    }
    case RedFunct::kFAnd:
    case RedFunct::kFOr: {
      const std::span<const std::uint8_t> flags{activity_row(st, t, in.rs), p};
      const auto op = f == RedFunct::kFAnd ? net::ReduceOp::kAnd : net::ReduceOp::kOr;
      st.set_sflag(t, in.rd, net::flag_reduce(op, flags, act) != 0);
      break;
    }
    case RedFunct::kGetPe: {
      const Word idx = st.sreg(t, in.rt);
      if (idx >= cfg.num_pes)
        throw SimulationError("getpe: PE index out of range");
      // Routed through the OR tree with a single enabled leaf; the
      // activity mask does not gate it (the CU selects the leaf directly).
      st.set_sreg(t, in.rd, st.preg(t, in.rs, idx));
      break;
    }
    default: {
      const std::span<const Word> vals{value_row(st, t, in.rs), p};
      st.set_sreg(t, in.rd, net::tree_reduce(reduce_op_of(f), vals, act, w));
      break;
    }
  }
}

}  // namespace

ExecResult execute(ArchState& st, ThreadId t, Addr pc, const Instruction& in,
                   PEWorkerPool* pool) {
  ExecResult res;
  res.next_pc = pc + 1;
  const auto& cfg = st.config();
  const unsigned w = cfg.word_width;

  switch (in.instr_class()) {
    case InstrClass::kParallel:
      exec_parallel(st, t, in, pool);
      return res;
    case InstrClass::kReduction:
      exec_reduction(st, t, in, pool);
      return res;
    case InstrClass::kScalar:
      break;
  }

  switch (in.op) {
    case Opcode::kSys:
      if (in.is_halt()) res.halt = true;
      break;

    case Opcode::kSAlu:
      st.set_sreg(t, in.rd,
                  alu_op(static_cast<AluFunct>(in.funct), st.sreg(t, in.rs),
                         st.sreg(t, in.rt), w));
      break;

    case Opcode::kSCmp:
      st.set_sflag(t, in.rd,
                   cmp_op(static_cast<CmpFunct>(in.funct), st.sreg(t, in.rs),
                          st.sreg(t, in.rt), w));
      break;

    case Opcode::kSFlag:
      st.set_sflag(t, in.rd,
                   flag_op(static_cast<FlagFunct>(in.funct),
                           st.sflag(t, in.rs), st.sflag(t, in.rt)));
      break;

    case Opcode::kAddi:
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) + static_cast<Word>(in.imm));
      break;
    case Opcode::kAndi:
      // Logical immediates zero-extend their 16-bit field (MIPS-style),
      // so lui+ori can synthesize any 32-bit constant.
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) & (static_cast<Word>(in.imm) & 0xFFFFu));
      break;
    case Opcode::kOri:
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) | (static_cast<Word>(in.imm) & 0xFFFFu));
      break;
    case Opcode::kXori:
      st.set_sreg(t, in.rd, st.sreg(t, in.rs) ^ (static_cast<Word>(in.imm) & 0xFFFFu));
      break;
    case Opcode::kSlti:
      st.set_sreg(t, in.rd,
                  sign_extend(st.sreg(t, in.rs), w) < in.imm ? 1 : 0);
      break;
    case Opcode::kSltiu:
      st.set_sreg(t, in.rd,
                  truncate(st.sreg(t, in.rs), w) <
                          truncate(static_cast<Word>(in.imm), w)
                      ? 1 : 0);
      break;
    case Opcode::kSlli:
      st.set_sreg(t, in.rd, alu_op(AluFunct::kSll, st.sreg(t, in.rs),
                                   static_cast<Word>(in.imm), w));
      break;
    case Opcode::kSrli:
      st.set_sreg(t, in.rd, alu_op(AluFunct::kSrl, st.sreg(t, in.rs),
                                   static_cast<Word>(in.imm), w));
      break;
    case Opcode::kSrai:
      st.set_sreg(t, in.rd, alu_op(AluFunct::kSra, st.sreg(t, in.rs),
                                   static_cast<Word>(in.imm), w));
      break;
    case Opcode::kLui:
      st.set_sreg(t, in.rd, static_cast<Word>(in.imm) << 16);
      break;

    case Opcode::kLw:
      st.set_sreg(t, in.rd,
                  st.scalar_mem(st.sreg(t, in.rs) + static_cast<Word>(in.imm)));
      break;
    case Opcode::kSw:
      st.set_scalar_mem(st.sreg(t, in.rs) + static_cast<Word>(in.imm),
                        st.sreg(t, in.rd));
      break;

    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      const Word a = st.sreg(t, in.rd), b = st.sreg(t, in.rs);
      bool taken = false;
      switch (in.op) {
        case Opcode::kBeq: taken = cmp_op(CmpFunct::kEq, a, b, w); break;
        case Opcode::kBne: taken = cmp_op(CmpFunct::kNe, a, b, w); break;
        case Opcode::kBlt: taken = cmp_op(CmpFunct::kLt, a, b, w); break;
        case Opcode::kBge: taken = cmp_op(CmpFunct::kGe, a, b, w); break;
        case Opcode::kBltu: taken = cmp_op(CmpFunct::kLtu, a, b, w); break;
        case Opcode::kBgeu: taken = cmp_op(CmpFunct::kGeu, a, b, w); break;
        default: break;
      }
      if (taken) {
        res.next_pc = static_cast<Addr>(
            static_cast<std::int64_t>(pc) + 1 + in.imm);
        res.taken_branch = true;
      }
      break;
    }
    case Opcode::kBfset:
    case Opcode::kBfclr: {
      const bool set = st.sflag(t, in.rd);
      if (set == (in.op == Opcode::kBfset)) {
        res.next_pc = static_cast<Addr>(
            static_cast<std::int64_t>(pc) + 1 + in.imm);
        res.taken_branch = true;
      }
      break;
    }
    case Opcode::kJ:
      res.next_pc = static_cast<Addr>(in.imm);
      res.taken_branch = true;
      break;
    case Opcode::kJal:
      st.set_sreg(t, in.rd, pc + 1);
      res.next_pc = static_cast<Addr>(in.imm);
      res.taken_branch = true;
      break;
    case Opcode::kJr:
      res.next_pc = st.sreg(t, in.rs);
      res.taken_branch = true;
      break;

    case Opcode::kTCtl:
      switch (static_cast<TCtlFunct>(in.funct)) {
        case TCtlFunct::kSpawn: {
          const ThreadId child = st.allocate_thread(st.sreg(t, in.rs));
          res.spawned = child;
          st.set_sreg(t, in.rd,
                      child == ArchState::kNoThread ? low_mask(w)
                                                    : truncate(child, w));
          break;
        }
        case TCtlFunct::kJoin: {
          const Word target = st.sreg(t, in.rs);
          if (target >= st.num_threads())
            throw SimulationError("tjoin: thread id out of range");
          if (st.thread(target).state != ThreadState::kFree) {
            res.blocked_join = true;
            res.join_target = target;
          }
          break;
        }
        case TCtlFunct::kExit:
          res.exited = true;
          break;
        case TCtlFunct::kTid:
          st.set_sreg(t, in.rd, truncate(t, w));
          break;
        case TCtlFunct::kNPes:
          st.set_sreg(t, in.rd, truncate(cfg.num_pes, w));
          break;
        case TCtlFunct::kNThreads:
          st.set_sreg(t, in.rd, truncate(st.num_threads(), w));
          break;
        case TCtlFunct::kCount:
          break;
      }
      break;

    case Opcode::kTMov: {
      const Word target = st.sreg(t, in.rt);
      if (target >= st.num_threads())
        throw SimulationError("tput/tget: thread id out of range");
      if (static_cast<TMovFunct>(in.funct) == TMovFunct::kPut)
        st.set_sreg(target, in.rd, st.sreg(t, in.rs));
      else
        st.set_sreg(t, in.rd, st.sreg(target, in.rs));
      break;
    }

    default:
      throw SimulationError("execute: unhandled opcode");
  }
  return res;
}

}  // namespace masc
