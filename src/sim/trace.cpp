#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "isa/encoding.hpp"

namespace masc {

namespace {

/// Stage cells of one instruction, keyed by absolute cycle. Rendered
/// exactly in the paper's Fig. 2 style: a stalled instruction repeats ID.
std::map<std::int64_t, std::string> stage_cells(const TraceEntry& e,
                                                const MachineConfig& cfg) {
  std::map<std::int64_t, std::string> cells;
  const auto ps = static_cast<std::int64_t>(e.pending_since);
  const auto is = static_cast<std::int64_t>(e.issue);
  const auto av = static_cast<std::int64_t>(e.avail);
  const unsigned b = cfg.broadcast_latency();
  const unsigned r = cfg.reduction_latency();

  cells[ps - 2] = "IF";
  for (std::int64_t c = ps - 1; c <= is - 1; ++c) cells[c] = "ID";
  cells[is] = "SR";

  switch (e.cls) {
    case InstrClass::kScalar:
      if (e.instr.op == Opcode::kLw || e.instr.op == Opcode::kSw) {
        cells[is + 1] = "EX";
        cells[is + 2] = "MA";
        cells[is + 3] = "WB";
      } else {
        for (std::int64_t c = is + 1; c <= av; ++c) cells[c] = "EX";
        cells[av + 1] = "MA";
        cells[av + 2] = "WB";
      }
      break;
    case InstrClass::kParallel: {
      for (unsigned k = 1; k <= b; ++k) cells[is + k] = "B" + std::to_string(k);
      cells[is + b + 1] = "PR";
      if (e.instr.op == Opcode::kPLw || e.instr.op == Opcode::kPSw) {
        cells[is + b + 2] = "EX";
        cells[is + b + 3] = "MA";
        cells[is + b + 4] = "WB";
      } else {
        for (std::int64_t c = is + b + 2; c <= av; ++c) cells[c] = "EX";
        cells[av + 1] = "MA";
        cells[av + 2] = "WB";
      }
      break;
    }
    case InstrClass::kReduction: {
      for (unsigned k = 1; k <= b; ++k) cells[is + k] = "B" + std::to_string(k);
      cells[is + b + 1] = "PR";
      for (unsigned k = 1; k <= r; ++k)
        cells[is + b + 1 + k] = "R" + std::to_string(k);
      cells[av + 1] = "WB";
      break;
    }
  }
  return cells;
}

}  // namespace

std::string render_pipeline_diagram(const std::vector<TraceEntry>& entries,
                                    const MachineConfig& cfg,
                                    bool show_thread_column) {
  if (entries.empty()) return "(empty trace)\n";

  std::vector<std::map<std::int64_t, std::string>> rows;
  std::int64_t lo = 0, hi = 0;
  bool first = true;
  for (const auto& e : entries) {
    rows.push_back(stage_cells(e, cfg));
    const auto& m = rows.back();
    if (first) {
      lo = m.begin()->first;
      hi = m.rbegin()->first;
      first = false;
    } else {
      lo = std::min(lo, m.begin()->first);
      hi = std::max(hi, m.rbegin()->first);
    }
  }

  constexpr std::size_t kLabelWidth = 26;
  constexpr std::size_t kCellWidth = 4;
  std::ostringstream os;

  // Header: cycle numbers starting at 1.
  os << std::string(kLabelWidth, ' ');
  for (std::int64_t c = lo; c <= hi; ++c) {
    const std::string n = std::to_string(c - lo + 1);
    os << std::string(kCellWidth - n.size(), ' ') << n;
  }
  os << '\n';

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    std::string label;
    if (show_thread_column) label += "t" + std::to_string(e.thread) + " ";
    label += disassemble(e.instr);
    if (label.size() > kLabelWidth - 1) label.resize(kLabelWidth - 1);
    os << label << std::string(kLabelWidth - label.size(), ' ');
    for (std::int64_t c = lo; c <= hi; ++c) {
      const auto it = rows[i].find(c);
      const std::string cell = it == rows[i].end() ? "" : it->second;
      os << std::string(kCellWidth - cell.size(), ' ') << cell;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace masc
