// Scriptable debugger engine over the cycle-accurate machine.
//
// Drives a Machine with text commands and returns text responses; the
// masc-dbg tool wraps it in a stdin REPL, and tests drive it directly.
//
// Commands:
//   s [n]            step n cycles (default 1)
//   c                continue until halt, breakpoint, or cycle limit
//   b <addr>         set a breakpoint (stops when any thread is about to
//                    issue the instruction at <addr>)
//   d <addr>         delete a breakpoint
//   regs [t]         scalar registers of thread t (default 0)
//   flags [t]        scalar flags of thread t
//   preg <r> [t]     parallel register r across all PEs
//   pflag <f> [t]    parallel flag f across all PEs
//   mem <a> [n]      scalar memory words
//   lmem <pe> <a> [n]  local memory words of one PE
//   threads          thread status table
//   list [a [n]]     disassemble n instructions from address a
//   trace [n]        pipeline diagram of the last n issued instructions
//   stats            statistics summary
//   q                quit
#pragma once

#include <set>
#include <string>

#include "sim/machine.hpp"

namespace masc {

class Debugger {
 public:
  /// Takes ownership of a configured machine; call after load().
  explicit Debugger(Machine& machine);

  struct Reply {
    std::string text;
    bool quit = false;
  };

  /// Execute one command line.
  Reply execute(const std::string& line);

  Machine& machine() { return machine_; }

 private:
  std::string step(Cycle n);
  std::string cont();
  /// True if any active, ready thread's next PC is a breakpoint.
  bool at_breakpoint() const;

  Machine& machine_;
  std::set<Addr> breakpoints_;
  Cycle continue_limit_ = 10'000'000;
};

}  // namespace masc
