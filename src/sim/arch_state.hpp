// Architectural state of the Multithreaded ASC Processor: memories,
// per-thread register contexts, and the hardware thread table.
//
// This state is shared between the cycle-accurate simulator and the fast
// functional simulator, which is what makes differential testing of the
// two meaningful: same state type, same execution semantics, different
// timing models.
#pragma once

#include <vector>

#include "assembler/program.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace masc {

class BinReader;
class BinWriter;

/// Lifecycle of a hardware thread context (paper Fig. 3, thread status
/// table).
enum class ThreadState : std::uint8_t {
  kFree,     ///< context unallocated
  kActive,   ///< fetching/issuing
  kWaiting,  ///< blocked in TJOIN on another thread
};

struct ThreadContext {
  ThreadState state = ThreadState::kFree;
  Addr pc = 0;
  ThreadId join_target = 0;  ///< valid when state == kWaiting
};

class ArchState {
 public:
  explicit ArchState(const MachineConfig& cfg);

  /// Load a program image: text into instruction memory, data into scalar
  /// memory, entry PC into thread 0 (which becomes the only active thread).
  void load(const Program& program);

  const MachineConfig& config() const { return cfg_; }

  // --- Scalar side ----------------------------------------------------------
  Word sreg(ThreadId t, RegNum r) const;
  void set_sreg(ThreadId t, RegNum r, Word v);
  bool sflag(ThreadId t, RegNum f) const;
  void set_sflag(ThreadId t, RegNum f, bool v);
  Word scalar_mem(Addr a) const;
  void set_scalar_mem(Addr a, Word v);

  // --- Parallel side --------------------------------------------------------
  Word preg(ThreadId t, RegNum r, PEIndex pe) const;
  void set_preg(ThreadId t, RegNum r, PEIndex pe, Word v);
  bool pflag(ThreadId t, RegNum f, PEIndex pe) const;
  void set_pflag(ThreadId t, RegNum f, PEIndex pe, bool v);
  Word local_mem(PEIndex pe, Addr a) const;
  void set_local_mem(PEIndex pe, Addr a, Word v);

  // --- Hot-path row accessors -----------------------------------------------
  // The backing stores are laid out structure-of-arrays for the PE loops:
  // pregs_[thread][reg][pe] and pflags_[thread][flag][pe], so one
  // (thread, reg) pair is a contiguous num_pes-element row. The execute
  // stage iterates these rows directly (vectorizable), instead of one
  // bounds-checked accessor call per PE. Register/flag 0 is hardwired:
  // callers must route reads of row 0 through zero_row()/ones_row() and
  // skip writes entirely.
  Word* preg_row(ThreadId t, RegNum r) {
    return pregs_.data() + preg_index(t, r, 0);
  }
  const Word* preg_row(ThreadId t, RegNum r) const {
    return pregs_.data() + preg_index(t, r, 0);
  }
  std::uint8_t* pflag_row(ThreadId t, RegNum f) {
    return pflags_.data() + pflag_index(t, f, 0);
  }
  const std::uint8_t* pflag_row(ThreadId t, RegNum f) const {
    return pflags_.data() + pflag_index(t, f, 0);
  }
  Word* local_mem_row(PEIndex pe) {
    return local_mem_.data() + static_cast<std::size_t>(pe) * cfg_.local_mem_bytes;
  }
  /// num_pes zeros — the value row of hardwired register 0.
  const Word* zero_row() const { return zero_row_.data(); }
  /// num_pes ones — the value row of hardwired flag 0 (always active).
  const std::uint8_t* ones_row() const { return ones_row_.data(); }

  /// Bulk accessors used by the asclib data-binding API and by tests.
  std::vector<Word> read_preg_vector(ThreadId t, RegNum r) const;
  void write_preg_vector(ThreadId t, RegNum r, const std::vector<Word>& v);
  std::vector<Word> read_local_column(Addr a) const;   ///< one address across PEs
  void write_local_column(Addr a, const std::vector<Word>& v);

  // --- Instruction memory ---------------------------------------------------
  InstrWord fetch(Addr pc) const;
  std::size_t text_size() const { return instr_mem_.size(); }

  // --- Thread table -----------------------------------------------------------
  ThreadContext& thread(ThreadId t) { return threads_.at(t); }
  const ThreadContext& thread(ThreadId t) const { return threads_.at(t); }
  std::uint32_t num_threads() const { return static_cast<std::uint32_t>(threads_.size()); }
  /// Allocate a free context; returns the thread id or nullopt-like
  /// all-ones when none is free.
  ThreadId allocate_thread(Addr entry_pc);
  std::uint32_t active_thread_count() const;

  static constexpr ThreadId kNoThread = ~ThreadId{0};

  // --- Checkpointing ----------------------------------------------------------
  /// Serialize all mutable state (memories, registers, thread table).
  /// Instruction memory is excluded: it is immutable after load(), so a
  /// restore target reloads the same Program first.
  void save(BinWriter& w) const;
  /// Inverse of save(). The ArchState must have been constructed with
  /// the same MachineConfig; throws BinError on a size mismatch.
  void restore(BinReader& r);

 private:
  std::size_t preg_index(ThreadId t, RegNum r, PEIndex pe) const {
    return (static_cast<std::size_t>(t) * cfg_.num_parallel_regs + r) * cfg_.num_pes + pe;
  }
  std::size_t pflag_index(ThreadId t, RegNum f, PEIndex pe) const {
    return (static_cast<std::size_t>(t) * cfg_.num_flag_regs + f) * cfg_.num_pes + pe;
  }

  MachineConfig cfg_;
  std::vector<InstrWord> instr_mem_;
  std::vector<Word> scalar_mem_;
  std::vector<Word> local_mem_;   ///< [pe][addr] flattened
  std::vector<Word> sregs_;       ///< [thread][reg]
  std::vector<std::uint8_t> sflags_;
  std::vector<Word> pregs_;       ///< [thread][reg][pe]
  std::vector<std::uint8_t> pflags_;
  std::vector<ThreadContext> threads_;
  std::vector<Word> zero_row_;            ///< num_pes zeros (register 0)
  std::vector<std::uint8_t> ones_row_;    ///< num_pes ones (flag 0)
};

}  // namespace masc
