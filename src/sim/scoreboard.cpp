#include "sim/scoreboard.hpp"

#include "common/binio.hpp"
#include "common/error.hpp"

namespace masc {

const char* to_string(StallCause c) {
  switch (c) {
    case StallCause::kNone: return "none";
    case StallCause::kReductionHazard: return "reduction";
    case StallCause::kBroadcastReductionHazard: return "broadcast-reduction";
    case StallCause::kDataHazard: return "data";
    case StallCause::kWawHazard: return "waw";
    case StallCause::kStructuralHazard: return "structural";
    case StallCause::kControlPenalty: return "control";
    case StallCause::kJoinWait: return "join";
    case StallCause::kThreadSwitch: return "thread-switch";
    case StallCause::kCauseCount: break;
  }
  return "?cause";
}

Scoreboard::Scoreboard(const MachineConfig& cfg, std::uint32_t threads)
    : sgpr_(cfg.num_scalar_regs),
      sflag_(cfg.num_flag_regs),
      pgpr_(cfg.num_parallel_regs),
      pflag_(cfg.num_flag_regs) {
  per_thread_ = static_cast<std::size_t>(sgpr_) + sflag_ + pgpr_ + pflag_;
  entries_.assign(per_thread_ * threads, Entry{});
}

std::size_t Scoreboard::index(ThreadId t, RegRef ref) const {
  std::size_t base = per_thread_ * t;
  switch (ref.space) {
    case RegSpace::kScalarGpr: break;
    case RegSpace::kScalarFlag: base += sgpr_; break;
    case RegSpace::kParallelGpr: base += sgpr_ + sflag_; break;
    case RegSpace::kParallelFlag: base += static_cast<std::size_t>(sgpr_) + sflag_ + pgpr_; break;
  }
  return base + ref.num;
}

const Scoreboard::Entry& Scoreboard::lookup(ThreadId t, RegRef ref) const {
  if (ref.hardwired()) return zero_;
  return entries_.at(index(t, ref));
}

void Scoreboard::record_write(ThreadId t, RegRef ref, Cycle avail,
                              InstrClass producer) {
  if (ref.hardwired()) return;
  auto& e = entries_.at(index(t, ref));
  e.avail = avail;
  e.producer = producer;
}

void Scoreboard::save(BinWriter& w) const {
  // Field-by-field: Entry has padding that must not enter the blob.
  w.u64(entries_.size());
  for (const Entry& e : entries_) {
    w.u64(e.avail);
    w.u8(static_cast<std::uint8_t>(e.producer));
  }
}

void Scoreboard::restore(BinReader& r) {
  if (r.u64() != entries_.size())
    throw BinError("checkpoint does not match this machine configuration");
  for (Entry& e : entries_) {
    e.avail = r.u64();
    e.producer = static_cast<InstrClass>(r.u8());
  }
}

}  // namespace masc
