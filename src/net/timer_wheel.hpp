// Hashed timer wheel for the event loop (docs/NET.md "Timers").
//
// The serve path needs many cheap coarse timers — one idle timer and
// one I/O-progress timer per connection, plus result-wait deadlines —
// all in the hundreds-of-milliseconds range. A wheel gives O(1) add and
// cancel with no per-timer heap churn: slot = (deadline / tick) % slots,
// and advance() only scans the slots the clock actually crossed.
//
// Single-threaded by design: a wheel belongs to exactly one EventLoop
// and is only touched from that loop's thread. Timers that must be
// armed or cancelled from another thread go through EventLoop::post().
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace masc::net {

using TimerId = std::uint64_t;

class TimerWheel {
 public:
  /// Granularity of one wheel tick. Deadlines round up to the next tick
  /// boundary, so a timer can fire up to kTickMs late — fine for the
  /// ms-scale idle/io budgets this wheel exists for.
  static constexpr std::uint64_t kTickMs = 8;
  static constexpr std::size_t kSlots = 256;

  /// Arm a timer `delay_ms` from `now_ms`. The callback runs inside a
  /// later advance() whose `now_ms` has reached the deadline. Returns a
  /// handle for cancel(); ids are never reused.
  TimerId add(std::uint64_t now_ms, std::uint64_t delay_ms,
              std::function<void()> cb) {
    const TimerId id = next_id_++;
    const std::uint64_t deadline = now_ms + delay_ms;
    // Place by the tick that STARTS at or after the deadline (round up):
    // when advance() crosses tick T it holds now >= T*kTickMs >= deadline,
    // so the entry is guaranteed due at its first slot visit. Floor
    // placement would visit the slot up to kTickMs-1 before the deadline,
    // skip the not-yet-due entry, and not return for a full lap
    // (kSlots * kTickMs ≈ 2s). A deadline inside an already-scanned tick
    // moves to the next tick advance() will cross.
    std::uint64_t tick = (deadline + kTickMs - 1) / kTickMs;
    if (primed_ && tick <= last_tick_) tick = last_tick_ + 1;
    const std::size_t slot = static_cast<std::size_t>(tick) % kSlots;
    slots_[slot].push_back(Entry{id, deadline, std::move(cb)});
    index_.emplace(id, std::make_pair(slot, std::prev(slots_[slot].end())));
    return id;
  }

  /// Disarm. Safe to call with an id that already fired or was already
  /// cancelled (no-op) — callers routinely cancel stale handles.
  void cancel(TimerId id) {
    auto it = index_.find(id);
    if (it == index_.end()) return;
    slots_[it->second.first].erase(it->second.second);
    index_.erase(it);
  }

  /// Fire every timer whose deadline is <= now_ms. Callbacks may add or
  /// cancel other timers freely; a callback cancelling a not-yet-fired
  /// due timer suppresses it. Returns the epoll timeout hint in ms:
  /// kTickMs while any timer is armed, kNoTimer when the wheel is empty.
  static constexpr std::uint64_t kNoTimer = UINT64_MAX;
  std::uint64_t advance(std::uint64_t now_ms) {
    const std::uint64_t cur_tick = now_ms / kTickMs;
    if (!primed_) {
      last_tick_ = cur_tick == 0 ? 0 : cur_tick - 1;
      primed_ = true;
    }
    std::uint64_t steps = cur_tick - last_tick_;
    if (steps > kSlots) steps = kSlots;  // a full lap visits every slot once
    for (std::uint64_t s = 1; s <= steps; ++s) {
      auto& slot = slots_[static_cast<std::size_t>(last_tick_ + s) % kSlots];
      // Collect due ids first: callbacks may mutate this very slot.
      std::vector<TimerId> due;
      for (const Entry& e : slot)
        if (e.deadline <= now_ms) due.push_back(e.id);
      for (TimerId id : due) {
        auto it = index_.find(id);
        if (it == index_.end()) continue;  // cancelled by an earlier cb
        std::function<void()> cb = std::move(it->second.second->cb);
        slots_[it->second.first].erase(it->second.second);
        index_.erase(it);
        cb();
      }
    }
    last_tick_ = cur_tick;
    return index_.empty() ? kNoTimer : kTickMs;
  }

  std::size_t armed() const { return index_.size(); }

 private:
  struct Entry {
    TimerId id;
    std::uint64_t deadline;
    std::function<void()> cb;
  };

  std::vector<std::list<Entry>> slots_ = std::vector<std::list<Entry>>(kSlots);
  std::unordered_map<TimerId,
                     std::pair<std::size_t, std::list<Entry>::iterator>>
      index_;
  TimerId next_id_ = 1;
  std::uint64_t last_tick_ = 0;
  bool primed_ = false;
};

}  // namespace masc::net
