#include "net/event_loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "fault/fault.hpp"

namespace masc::net {

namespace {

void set_nonblocking(int fd) {
  // All sockets handed to a loop must be nonblocking; a blocking recv
  // on one conn would stall every other conn on the loop.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void frame_header(std::size_t len, unsigned char hdr[4]) {
  hdr[0] = static_cast<unsigned char>(len >> 24);
  hdr[1] = static_cast<unsigned char>(len >> 16);
  hdr[2] = static_cast<unsigned char>(len >> 8);
  hdr[3] = static_cast<unsigned char>(len);
}

}  // namespace

// ---------------------------------------------------------------------------
// Conn

void Conn::send_frame(const std::string& payload) {
  if (closing()) return;
  if (payload.size() > loop_->cfg_.max_frame_bytes) {
    loop_->mark_dead(*this);
    return;
  }
  bool truncate = false;
  if (auto* inj = fault::active()) {
    switch (inj->on_frame_send()) {
      case fault::FrameFault::kNone:
        break;
      case fault::FrameFault::kDrop:
        return;  // frame silently lost; the stream stays in sync
      case fault::FrameFault::kDelay:
        // Test-only: the injector is never installed in production, so
        // stalling the loop thread here is acceptable and models a
        // sender that went slow.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(inj->plan().frame_delay_ms));
        break;
      case fault::FrameFault::kTruncate:
        truncate = true;
        break;
    }
  }
  unsigned char hdr[4];
  frame_header(payload.size(), hdr);
  // While parse_frames is dispatching a batch of pipelined requests,
  // coalesce the responses into one queue entry (one ::send covers the
  // whole batch) and let the batch end flush them together. The merge
  // bound keeps a single entry from growing without limit; appending to
  // a partially-sent front entry is fine — flush resumes at woff_.
  constexpr std::size_t kCorkMergeBytes = 256u << 10;
  if (corked_ && !truncate && !wq_.empty() &&
      wq_.back().size() < kCorkMergeBytes) {
    std::string& back = wq_.back();
    back.append(reinterpret_cast<const char*>(hdr), 4);
    back.append(payload);
    wbytes_ += 4 + payload.size();
    return;  // parse_frames flushes once per batch
  }
  std::string buf;
  if (truncate) {
    // Announce the full length, send half the bytes, die: exactly what
    // a sender killed mid-send looks like to the peer.
    buf.reserve(4 + payload.size() / 2);
    buf.append(reinterpret_cast<const char*>(hdr), 4);
    buf.append(payload.data(), payload.size() / 2);
  } else {
    buf.reserve(4 + payload.size());
    buf.append(reinterpret_cast<const char*>(hdr), 4);
    buf.append(payload);
  }
  wbytes_ += buf.size();
  wq_.push_back(std::move(buf));
  if (truncate) closing_ = true;  // flush the torn frame, then drop
  if (corked_) return;  // parse_frames flushes once per batch
  if (!loop_->flush(*this)) return;
  loop_->update_interest(*this);
  loop_->update_timers(*this);
}

void Conn::close() {
  if (dead_) return;
  closing_ = true;
  if (wq_.empty()) {
    loop_->mark_dead(*this);
  } else {
    // Called from a posted task: make sure EPOLLOUT is armed so the
    // tail of the write queue actually drains before the fd closes.
    loop_->update_interest(*this);
  }
}

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop(LoopConfig cfg) : cfg_(std::move(cfg)) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0)
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakefd_ < 0) {
    ::close(epfd_);
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // conn id 0 is reserved for the wakeup fd
  (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev);
}

EventLoop::~EventLoop() {
  // run() has returned (or never ran); tear down whatever is left.
  for (auto& [id, c] : conns_) {
    (void)id;
    ::close(c->fd_);
  }
  conns_.clear();
  if (wakefd_ >= 0) ::close(wakefd_);
  if (epfd_ >= 0) ::close(epfd_);
}

std::uint64_t EventLoop::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  ssize_t rc;
  do {
    rc = ::write(wakefd_, &one, sizeof one);
  } while (rc < 0 && errno == EINTR);
}

void EventLoop::post(std::function<void()> fn) {
  if (stopping_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::adopt(int fd) {
  set_nonblocking(fd);
  bool queued = false;
  if (!stopping_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (!stopping_.load(std::memory_order_acquire)) {
      posted_.push_back([this, fd] { create_conn(fd); });
      queued = true;
    }
  }
  if (!queued) {
    ::close(fd);  // the loop is going away; don't leak the socket
    return;
  }
  wake();
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& fn : tasks) fn();
}

void EventLoop::run() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::uint64_t hint = wheel_.advance(now_ms());
    sweep_dead();
    int timeout = -1;
    if (hint != TimerWheel::kNoTimer)
      timeout = static_cast<int>(hint > 1000 ? 1000 : hint);
    const int n = ::epoll_wait(epfd_, events, 64, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == 0) {
        std::uint64_t drain;
        while (::read(wakefd_, &drain, sizeof drain) > 0) {
        }
        run_posted();
      } else {
        handle_event(id, events[i].events);
      }
      sweep_dead();
    }
  }
  // Orderly teardown on the loop thread: every surviving conn gets its
  // on_close exactly once.
  run_posted();  // adoptions already queued still own their fds
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, c] : conns_) {
    (void)c;
    ids.push_back(id);
  }
  for (std::uint64_t id : ids) destroy(id);
}

void EventLoop::create_conn(int fd) {
  const std::uint64_t id = next_conn_id_++;
  auto conn = std::unique_ptr<Conn>(new Conn(this, fd, id));
  Conn* c = conn.get();
  conns_.emplace(id, std::move(conn));
  conn_count_.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    conns_.erase(id);
    conn_count_.fetch_sub(1, std::memory_order_relaxed);
    ::close(fd);
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    // Raced with stop(): run()'s teardown already swept conns_. Destroy
    // here so on_close still fires exactly once.
    destroy(id);
    return;
  }
  update_timers(*c);
  if (cfg_.on_open) cfg_.on_open(*c);
}

Conn* EventLoop::find(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second->dead_) return nullptr;
  return it->second.get();
}

TimerId EventLoop::add_timer(std::uint64_t delay_ms,
                             std::function<void()> cb) {
  return wheel_.add(now_ms(), delay_ms, std::move(cb));
}

void EventLoop::cancel_timer(TimerId id) { wheel_.cancel(id); }

void EventLoop::mark_dead(Conn& c) {
  if (c.dead_) return;
  c.dead_ = true;
  dead_.push_back(c.id_);
}

void EventLoop::sweep_dead() {
  while (!dead_.empty()) {
    std::vector<std::uint64_t> batch;
    batch.swap(dead_);  // on_close may mark more conns dead
    for (std::uint64_t id : batch) destroy(id);
  }
}

void EventLoop::destroy(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (c.idle_timer_) wheel_.cancel(c.idle_timer_);
  if (c.io_timer_) wheel_.cancel(c.io_timer_);
  c.idle_timer_ = c.io_timer_ = 0;
  if (cfg_.on_close) cfg_.on_close(c);
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, c.fd_, nullptr);
  ::close(c.fd_);
  conns_.erase(it);
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
}

void EventLoop::handle_event(std::uint64_t conn_id, std::uint32_t events) {
  Conn* c = find(conn_id);
  if (!c) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    // Let the read path observe the close/error so a final buffered
    // frame (e.g. shutdown's response already sent by the peer's view)
    // is still parsed.
    do_read(*c);
    if (!c->dead_) mark_dead(*c);
    return;
  }
  if (events & EPOLLOUT) do_write(*c);
  if (c->dead_) return;
  if (events & EPOLLIN) do_read(*c);
  if (c->dead_) return;
  if (c->closing_ && c->wq_.empty()) {
    mark_dead(*c);
    return;
  }
  update_interest(*c);
  update_timers(*c);
}

void EventLoop::do_read(Conn& c) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(c.fd_, buf, sizeof buf, 0);
    if (n > 0) {
      c.rbuf_.append(buf, static_cast<std::size_t>(n));
      c.progress_ += static_cast<std::uint64_t>(n);
      parse_frames(c);
      if (c.dead_) return;
      if (!c.reading_) return;  // parse pushed us over the high-water mark
      if (static_cast<std::size_t>(n) < sizeof buf) return;  // drained
      continue;
    }
    if (n == 0) {
      // Clean close. Mid-frame bytes left in rbuf_ are a truncated
      // frame — either way the conn is done.
      mark_dead(c);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    mark_dead(c);
    return;
  }
}

void EventLoop::parse_frames(Conn& c) {
  // update_interest's resume-read path re-enters here; the active call
  // below keeps consuming (its continuation loop), so just return.
  if (c.in_parse_) return;
  c.in_parse_ = true;
  for (;;) {
    const std::size_t batch_start = c.rpos_;
    // Cork: every send_frame from on_frame below only queues; the
    // whole batch of responses is flushed in one ::send at batch end.
    c.corked_ = true;
    while (!c.closing_ && !c.dead_) {
      const std::size_t avail = c.rbuf_.size() - c.rpos_;
      if (avail < 4) break;
      const unsigned char* p =
          reinterpret_cast<const unsigned char*>(c.rbuf_.data() + c.rpos_);
      const std::size_t len = (static_cast<std::size_t>(p[0]) << 24) |
                              (static_cast<std::size_t>(p[1]) << 16) |
                              (static_cast<std::size_t>(p[2]) << 8) |
                              static_cast<std::size_t>(p[3]);
      if (len > cfg_.max_frame_bytes) {
        // Same contract as serve::read_frame: an absurd length means
        // the stream is garbage; drop the connection (queued responses
        // die with it — the stream was never going to stay in sync).
        mark_dead(c);
        break;
      }
      if (avail - 4 < len) break;  // frame not complete yet
      std::string payload = c.rbuf_.substr(c.rpos_ + 4, len);
      c.rpos_ += 4 + len;
      if (cfg_.on_frame) cfg_.on_frame(c, std::move(payload));
      // A pipelining client can queue responses faster than it reads
      // them; stop consuming input until the write queue drains.
      if (c.wbytes_ > cfg_.write_high_water) c.reading_ = false;
      if (!c.reading_) break;
    }
    c.corked_ = false;
    const bool consumed = c.rpos_ != batch_start;
    // Compact once the parsed prefix dominates the buffer.
    if (c.rpos_ > 4096 && c.rpos_ * 2 >= c.rbuf_.size()) {
      c.rbuf_.erase(0, c.rpos_);
      c.rpos_ = 0;
    }
    if (c.dead_) break;
    if (!c.wq_.empty() && !flush(c)) break;  // batch flush (may mark dead)
    update_interest(c);  // re-arm + maybe resume reading (guard above)
    update_timers(c);
    // Continue only when the flush resumed a paused reader and complete
    // frames may still be buffered; a no-progress pass means the rest
    // is a partial frame.
    if (!consumed || !c.reading_ || c.rbuf_.size() - c.rpos_ < 4) break;
  }
  c.in_parse_ = false;
}

bool EventLoop::flush(Conn& c) {
  while (!c.wq_.empty()) {
    const std::string& front = c.wq_.front();
    const ssize_t n = ::send(c.fd_, front.data() + c.woff_,
                             front.size() - c.woff_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      mark_dead(c);
      return false;
    }
    c.woff_ += static_cast<std::size_t>(n);
    c.wbytes_ -= static_cast<std::size_t>(n);
    c.progress_ += static_cast<std::uint64_t>(n);
    if (c.woff_ == front.size()) {
      c.wq_.pop_front();
      c.woff_ = 0;
    }
  }
  if (c.closing_) {
    mark_dead(c);
    return false;
  }
  return true;
}

void EventLoop::do_write(Conn& c) {
  if (!flush(c)) return;
  update_interest(c);
  update_timers(c);
}

void EventLoop::update_interest(Conn& c) {
  if (c.dead_) return;
  const bool want_write = !c.wq_.empty();
  const bool resume_read =
      !c.reading_ && c.wbytes_ <= cfg_.write_high_water / 2;
  if (resume_read) c.reading_ = true;
  const std::uint32_t mask = (c.reading_ ? EPOLLIN : 0u) |
                             (want_write ? EPOLLOUT : 0u);
  const std::uint32_t prev = (c.want_write_ ? EPOLLOUT : 0u) |
                             (c.reading_prev_mask_ ? EPOLLIN : 0u);
  if (mask == prev) return;
  c.want_write_ = want_write;
  c.reading_prev_mask_ = c.reading_;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = c.id_;
  (void)::epoll_ctl(epfd_, EPOLL_CTL_MOD, c.fd_, &ev);
  if (resume_read) parse_frames(c);  // bytes may already be buffered
}

void EventLoop::update_timers(Conn& c) {
  if (c.dead_) return;
  const bool mid_frame = (c.rbuf_.size() - c.rpos_) > 0;
  const bool writing = !c.wq_.empty();
  // io timer: forward-progress watchdog while a frame is in flight in
  // either direction. Re-armed only when progress happened since the
  // last arm; firing without progress reaps the conn.
  if ((mid_frame || writing) && cfg_.io_timeout_ms > 0) {
    if (!c.io_timer_) {
      c.io_progress_snapshot_ = c.progress_;
      const std::uint64_t id = c.id_;
      c.io_timer_ = add_timer(cfg_.io_timeout_ms, [this, id] {
        Conn* cc = find(id);
        if (!cc) return;
        cc->io_timer_ = 0;
        const bool still_stalled = ((cc->rbuf_.size() - cc->rpos_) > 0 ||
                                    !cc->wq_.empty()) &&
                                   cc->progress_ == cc->io_progress_snapshot_;
        if (still_stalled) {
          mark_dead(*cc);
        } else {
          update_timers(*cc);
        }
      });
    }
  } else if (c.io_timer_) {
    wheel_.cancel(c.io_timer_);
    c.io_timer_ = 0;
  }
  // idle timer: budget for the next frame to begin. Reset (re-armed)
  // whenever transfer progress moved, i.e. the peer is alive.
  if (!mid_frame && cfg_.idle_timeout_ms > 0) {
    if (c.idle_timer_ && c.progress_ != c.idle_progress_snapshot_) {
      wheel_.cancel(c.idle_timer_);
      c.idle_timer_ = 0;
    }
    if (!c.idle_timer_) {
      c.idle_progress_snapshot_ = c.progress_;
      const std::uint64_t id = c.id_;
      c.idle_timer_ = add_timer(cfg_.idle_timeout_ms, [this, id] {
        Conn* cc = find(id);
        if (!cc) return;
        cc->idle_timer_ = 0;
        if (cc->progress_ == cc->idle_progress_snapshot_) {
          mark_dead(*cc);
        } else {
          update_timers(*cc);
        }
      });
    }
  } else if (mid_frame && c.idle_timer_) {
    wheel_.cancel(c.idle_timer_);
    c.idle_timer_ = 0;
  }
}

// ---------------------------------------------------------------------------
// LoopGroup

LoopGroup::LoopGroup(std::size_t n, const LoopConfig& cfg) {
  if (n == 0) n = 1;
  loops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    loops_.push_back(std::make_unique<EventLoop>(cfg));
}

LoopGroup::~LoopGroup() { stop(); }

void LoopGroup::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(loops_.size());
  for (auto& l : loops_)
    threads_.emplace_back([loop = l.get()] { loop->run(); });
}

void LoopGroup::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& l : loops_) l->stop();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

}  // namespace masc::net
