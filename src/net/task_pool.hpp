// Fixed-size blocking-work pool for event-loop servers (docs/NET.md
// "Offloading blocking work").
//
// Event-loop handlers must never block, but some router ops are
// blocking by construction (a forwarded `result` wait holds a backend
// connection open for seconds). Those handlers run here; the finished
// response is then post()ed back to the conn's owning loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace masc::net {

class TaskPool {
 public:
  explicit TaskPool(std::size_t threads) : target_(threads ? threads : 1) {}
  ~TaskPool() { stop(); }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  void start() {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    workers_.reserve(target_);
    for (std::size_t i = 0; i < target_; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  /// Finish everything already queued, then join. Idempotent. Tasks
  /// submitted after stop() are dropped.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!started_ || stopping_) {
        stopping_ = true;
        if (!started_) return;
      }
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_)
      if (t.joinable()) t.join();
    workers_.clear();
  }

  void submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  std::size_t size() const { return target_; }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> fn;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and drained
        fn = std::move(queue_.front());
        queue_.pop_front();
      }
      fn();
    }
  }

  const std::size_t target_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace masc::net
