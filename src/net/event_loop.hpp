// Epoll-based nonblocking event core for the serve path (docs/NET.md).
//
// One EventLoop owns one epoll fd, a wakeup eventfd for cross-thread
// post(), a TimerWheel, and a set of Conn objects. A Conn buffers
// nonblocking reads until complete length-prefixed frames appear (the
// same 4-byte big-endian framing as serve/framing.hpp) and buffers
// writes until the socket drains, so handler code never blocks on I/O.
//
// Threading contract:
//   - run() executes on exactly one thread (the "loop thread").
//   - Conn methods, find(), and timer methods are loop-thread only.
//   - post(), adopt(), and stop() are safe from any thread; post() is
//     how dispatcher completions re-enter the loop ("wakeup fd for
//     cross-thread job-completion posts").
//   - Conns are referred to across threads by (loop, conn id), never by
//     pointer: a posted task re-looks the id up and quietly does
//     nothing when the conn died in between.
//
// This library sits *below* serve/: it knows about frames, fault
// injection, and timeouts, but nothing about JSON or protocol ops.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/timer_wheel.hpp"

namespace masc::net {

class EventLoop;

/// One buffered nonblocking connection, owned by its EventLoop.
class Conn {
 public:
  std::uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  EventLoop& loop() { return *loop_; }

  /// Queue one length-prefixed frame and flush as far as the socket
  /// allows. Honours the frame fault injector exactly like
  /// serve::write_frame: kDrop skips the frame, kDelay sleeps the loop
  /// thread (test-only), kTruncate sends the header plus half the
  /// payload and then closes — a sender that died mid-send.
  void send_frame(const std::string& payload);

  /// Flush whatever is queued, then close. Immediate when nothing is
  /// queued. Safe mid-handler: destruction is deferred to the sweep
  /// point after the current event.
  void close();

  /// True once close() was called or the conn hit an error; no further
  /// frames will be delivered or accepted.
  bool closing() const { return closing_ || dead_; }

  /// Owner-attached session state (protocol version, response ordering
  /// queue, ...). The loop never looks inside.
  std::shared_ptr<void> ctx;

 private:
  friend class EventLoop;
  Conn(EventLoop* loop, int fd, std::uint64_t id)
      : loop_(loop), fd_(fd), id_(id) {}

  EventLoop* loop_;
  int fd_;
  std::uint64_t id_;

  std::string rbuf_;       ///< unparsed inbound bytes
  std::size_t rpos_ = 0;   ///< parse cursor into rbuf_
  std::deque<std::string> wq_;
  std::size_t woff_ = 0;   ///< bytes of wq_.front() already sent
  std::size_t wbytes_ = 0; ///< total queued outbound bytes
  bool want_write_ = false;
  bool reading_ = true;    ///< false while paused above the high-water mark
  bool reading_prev_mask_ = true;  ///< EPOLLIN state as registered
  bool corked_ = false;    ///< parse batch active: send_frame defers its flush
  bool in_parse_ = false;  ///< parse_frames reentry guard (resume-read path)
  bool closing_ = false;   ///< flush-then-close requested
  bool dead_ = false;      ///< queued for destruction at the sweep point

  TimerId idle_timer_ = 0;
  TimerId io_timer_ = 0;
  std::uint64_t progress_ = 0;  ///< bytes moved; timers compare snapshots
  std::uint64_t io_progress_snapshot_ = 0;
  std::uint64_t idle_progress_snapshot_ = 0;
};

struct LoopConfig {
  /// Budget for a frame to *begin* (time between requests). 0 = none.
  std::uint64_t idle_timeout_ms = 0;
  /// Budget for forward progress once a frame started (stalled reader
  /// or writer). 0 = none.
  std::uint64_t io_timeout_ms = 0;
  /// Hard cap on one inbound frame's payload; oversized frames drop the
  /// connection, mirroring serve::read_frame.
  std::size_t max_frame_bytes = 16u << 20;
  /// Stop reading when a conn's outbound queue exceeds this (a pipelined
  /// client that never reads its responses); resume below half of it.
  std::size_t write_high_water = 32u << 20;
  /// Delivered once per complete inbound frame, on the loop thread.
  std::function<void(Conn&, std::string&&)> on_frame;
  /// Conn adopted and registered (loop thread). Optional.
  std::function<void(Conn&)> on_open;
  /// Conn is going away: fd still open, ctx still set (loop thread).
  /// Optional. Runs exactly once per conn, including at loop stop.
  std::function<void(Conn&)> on_close;
};

class EventLoop {
 public:
  explicit EventLoop(LoopConfig cfg);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Process events until stop(). Call from exactly one thread.
  void run();

  /// Ask run() to finish: every conn gets on_close, then run() returns.
  /// Safe from any thread, idempotent.
  void stop();

  /// Run `fn` on the loop thread. Safe from any thread. Tasks posted
  /// after stop() are silently dropped (their targets are gone anyway).
  void post(std::function<void()> fn);

  /// Hand a connected socket to this loop. Safe from any thread; the
  /// Conn is created on the loop thread (on_open fires there). The loop
  /// owns the fd from this point, even if it is stopping.
  void adopt(int fd);

  /// Loop-thread only: conn by id, or nullptr if it died.
  Conn* find(std::uint64_t conn_id);

  /// Loop-thread only: arm/cancel a wheel timer.
  TimerId add_timer(std::uint64_t delay_ms, std::function<void()> cb);
  void cancel_timer(TimerId id);

  /// Approximate live-conn count (any thread; monitoring only).
  std::size_t conn_count() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

  /// Monotonic coarse clock used for every deadline in this loop (ms).
  static std::uint64_t now_ms();

 private:
  friend class Conn;

  void wake();
  void run_posted();
  void handle_event(std::uint64_t conn_id, std::uint32_t events);
  void do_read(Conn& c);
  void do_write(Conn& c);
  bool flush(Conn& c);  ///< returns false when the conn broke
  void parse_frames(Conn& c);
  void update_interest(Conn& c);
  void update_timers(Conn& c);
  void mark_dead(Conn& c);
  void sweep_dead();
  void destroy(std::uint64_t conn_id);
  void create_conn(int fd);

  LoopConfig cfg_;
  int epfd_ = -1;
  int wakefd_ = -1;
  TimerWheel wheel_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<std::uint64_t> dead_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<std::size_t> conn_count_{0};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  std::atomic<bool> stopping_{false};
};

/// N event loops, each on its own thread, with round-robin adoption —
/// the "accept thread + N event-loop threads" topology both daemons use.
class LoopGroup {
 public:
  LoopGroup(std::size_t n, const LoopConfig& cfg);
  ~LoopGroup();

  void start();
  void stop();  ///< stop every loop and join its thread; idempotent

  EventLoop& next() {
    return *loops_[next_.fetch_add(1, std::memory_order_relaxed) %
                   loops_.size()];
  }
  EventLoop& at(std::size_t i) { return *loops_[i]; }
  std::size_t size() const { return loops_.size(); }

  std::size_t conn_count() const {
    std::size_t n = 0;
    for (const auto& l : loops_) n += l->conn_count();
    return n;
  }

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace masc::net
