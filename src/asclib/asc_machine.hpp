// High-level host API over the cycle-accurate simulator.
//
// The ASC programming pattern: the host binds parallel data into the PE
// local memories (which the paper describes as programmer-managed
// caches; off-chip transfer is outside the prototype's scope), sets
// scalar argument registers, runs an assembly kernel, and reads results
// back from scalar registers / memories.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace masc::asc {

struct RunOutcome {
  bool finished = false;
  Cycle cycles = 0;
  Stats stats;
};

class AscMachine {
 public:
  explicit AscMachine(const MachineConfig& cfg);

  /// Assemble and load a kernel. Resets nothing else; call before binds
  /// so the data segment does not overwrite bound scalar memory.
  void load_source(const std::string& asm_source);

  // --- Data binding (host -> machine) -------------------------------------
  /// One word per PE at a single local-memory address. Shorter vectors
  /// leave the remaining PEs untouched.
  void bind_local_column(Addr addr, std::span<const Word> values);
  /// Values distributed round-robin across PEs into consecutive
  /// local-memory slots: element i goes to PE (i % p), address
  /// base + i / p. Returns the number of slots used.
  std::uint32_t bind_strided(Addr base, std::span<const Word> values);
  /// Validity column(s) for a strided bind: local word = 1 where an
  /// element exists, 0 in the tail padding.
  void bind_strided_validity(Addr base, std::size_t count);
  void bind_scalar_mem(Addr base, std::span<const Word> values);
  /// Scalar argument register of thread 0.
  void set_arg(RegNum reg, Word value);

  // --- Execution -------------------------------------------------------------
  RunOutcome run(Cycle max_cycles = 200'000'000);

  // --- Result readback ---------------------------------------------------------
  Word result(RegNum reg) const;            ///< thread-0 scalar register
  Word mem(Addr addr) const;                ///< scalar memory word
  std::vector<Word> read_local_column(Addr addr) const;
  /// Inverse of bind_strided.
  std::vector<Word> read_strided(Addr base, std::size_t count) const;

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  const MachineConfig& config() const { return machine_.config(); }
  std::uint32_t num_pes() const { return config().num_pes; }

 private:
  Machine machine_;
};

/// Number of local-memory slots a strided bind of `count` elements needs.
inline std::uint32_t slots_for(std::size_t count, std::uint32_t num_pes) {
  return static_cast<std::uint32_t>((count + num_pes - 1) / num_pes);
}

}  // namespace masc::asc
