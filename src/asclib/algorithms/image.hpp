// Image/video kernels — the application domain the paper cites when
// motivating the sum unit (§6.4: "it is used in a number of image and
// video processing algorithms").
//
// Two workloads:
//  * Global statistics (sum / mean / min / max) over an image distributed
//    round-robin across PEs — a pure reduction-throughput workload.
//  * SAD block matching (motion-estimation style): each PE holds one
//    candidate window; the template is broadcast pixel by pixel and each
//    PE accumulates |window - template|; an unsigned min-reduction plus
//    responder selection returns the best-matching window.
#pragma once

#include <cstdint>
#include <vector>

#include "asclib/asc_machine.hpp"

namespace masc::asc {

class ImageKernels {
 public:
  explicit ImageKernels(const MachineConfig& cfg);

  struct GlobalStats {
    Word sum = 0;   ///< saturating at the machine word width
    Word min = 0;
    Word max = 0;
    Word mean = 0;  ///< sum / count (machine division)
    RunOutcome outcome;
  };

  /// Sum/min/max/mean over all pixels. Pixel count must fit the layout
  /// (3 * slots <= 255).
  GlobalStats global_stats(const std::vector<Word>& pixels);

  struct Histogram {
    std::vector<Word> bins;  ///< responder count per bin value [0, num_bins)
    RunOutcome outcome;
  };

  /// Exact histogram over pixel values in [0, num_bins): one
  /// broadcast-compare + responder count per (bin, slot) pair — the
  /// response counter doing its canonical job.
  Histogram histogram(const std::vector<Word>& pixels, Word num_bins);

  struct SadResult {
    std::size_t best_window = 0;  ///< index of the minimizing candidate
    Word best_sad = 0;
    RunOutcome outcome;
  };

  /// windows[w][k]: pixel k of candidate window w (one window per PE,
  /// count <= num_pes); tmpl[k]: the template block.
  SadResult sad_search(const std::vector<std::vector<Word>>& windows,
                       const std::vector<Word>& tmpl);

  /// Host references for validation.
  static GlobalStats reference_stats(const std::vector<Word>& pixels,
                                     unsigned width);
  static SadResult reference_sad(const std::vector<std::vector<Word>>& windows,
                                 const std::vector<Word>& tmpl, unsigned width);

 private:
  MachineConfig cfg_;
};

}  // namespace masc::asc
