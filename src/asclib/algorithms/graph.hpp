// Graph BFS-frontier kernel — the associative formulation of breadth-
// first search, runnable on one bare Machine or on a K-chip fabric.
//
// Vertices are strided across chips × PEs (global vertex g lives on
// chip g / ceil(n/K), local index l = g % ceil(n/K), i.e. PE l % p,
// slot l / p). The frontier, next-frontier, and visited sets are dense
// bitmasks in scalar memory, identical on every chip; adjacency is a
// per-vertex neighbor bitmask bound into PE local memory. One BFS
// level is the classic ASC pattern: every PE tests "am I valid,
// unvisited, and is my frontier bit set?" in parallel, newly reached
// PEs take the level number from a broadcast, and their adjacency
// words are OR-reduced through the reduction tree into the next
// frontier — per level, per frontier word, one tree reduction. On K
// chips the per-chip next-frontier masks are then merged with a single
// fabric allreduce-OR (docs/MULTICHIP.md), which is exactly the
// cross-chip reduction traffic this workload exists to stress.
//
// Optionally, threads 1..T-1 of every chip run an independent stream
// of local reductions ("background work") while thread 0 drives BFS —
// the experiment bench_e11_multichip uses to ask the paper's question
// at fabric scale: does multithreading hide the now much deeper
// reduction latency?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "fabric/fabric.hpp"
#include "sim/stats.hpp"

namespace masc::asc {

struct GraphEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
};

class GraphBfs {
 public:
  struct Result {
    /// Per-vertex BFS level, 1-based: level[source] == 1, unreached
    /// vertices stay 0 (so distance = level - 1).
    std::vector<Word> level;
    Word levels = 0;       ///< number of BFS levels executed
    Cycle cycles = 0;      ///< fleet time (max over chips)
    Stats fleet;           ///< single-chip Stats or Fabric::fleet_stats
    fabric::FabricStats fabric;  ///< all-zero for the single-chip run
    bool used_fabric = false;
  };

  /// `cfg` is the per-chip machine; requires word_width >= 16 (vertex
  /// ids and bitmask words must fit an architectural word) and enough
  /// PE local memory for (4 + ceil(n/width)) strided columns.
  GraphBfs(const MachineConfig& cfg, std::uint32_t num_vertices,
           std::vector<GraphEdge> edges, bool directed = false);

  /// Single bare chip — no fabric, the kernel's NUM_CHIPS mailbox word
  /// reads 0 and the cross-chip merge is skipped.
  Result run(std::uint32_t source, Word bg_iterations = 0) const;

  /// K chips under the given fabric; one allreduce-OR per BFS level.
  Result run(std::uint32_t source, const fabric::FabricConfig& fab,
             Word bg_iterations = 0) const;

  /// Host-side reference BFS with the same level convention, for
  /// self-checking tests and benches.
  static std::vector<Word> host_reference(std::uint32_t num_vertices,
                                          const std::vector<GraphEdge>& edges,
                                          bool directed, std::uint32_t source);

  std::uint32_t num_vertices() const { return n_; }

 private:
  /// Vertices per chip and local-memory slots per PE for a K-chip split.
  std::uint32_t verts_per_chip(std::uint32_t chips) const;
  std::uint32_t slots(std::uint32_t chips) const;
  /// Throws if the layout does not fit plw's 9-bit immediates, the PE
  /// local memory, or scalar memory below the mailbox.
  void validate_layout(std::uint32_t chips, Addr mailbox_base) const;
  std::string kernel_source(std::uint32_t chips, Addr mailbox_base,
                            bool background) const;
  void bind_chip(ArchState& st, std::uint32_t chip, std::uint32_t chips,
                 std::uint32_t source, Word bg_iterations) const;
  Result collect(std::uint32_t chips,
                 const std::vector<const Machine*>& machines) const;

  MachineConfig cfg_;
  std::uint32_t n_;
  std::uint32_t frontier_words_;           ///< ceil(n / word_width)
  std::vector<std::vector<Word>> adj_;     ///< [vertex][frontier word]
};

}  // namespace masc::asc
