#include "asclib/algorithms/sort.hpp"

#include "asclib/kernels.hpp"
#include "common/error.hpp"

namespace masc::asc {

namespace {

/// Local-memory layout: values at [0, S), validity at [S, 2S), and a
/// mutable "alive" column at [2S, 3S) that the kernel consumes as
/// elements are extracted.
struct Layout {
  std::uint32_t slots;
  Addr values() const { return 0; }
  Addr valid() const { return slots; }
  Addr alive() const { return 2 * slots; }
};

}  // namespace

AscSorter::AscSorter(const MachineConfig& cfg, std::vector<Word> values)
    : cfg_(cfg), values_(std::move(values)) {
  expect(!values_.empty(), "AscSorter: empty input");
  const auto slots = slots_for(values_.size(), cfg_.num_pes);
  expect(3 * slots <= 255, "AscSorter: table too large for layout");
  expect(3 * slots <= cfg_.local_mem_bytes, "AscSorter: local memory too small");
}

AscSorter::Result AscSorter::extract(std::uint32_t k, bool ascending) {
  expect(k >= 1 && k <= values_.size(), "AscSorter: k out of range");
  const Layout lay{slots_for(values_.size(), cfg_.num_pes)};
  const std::string S = std::to_string(lay.slots);

  // Each extraction: pass 1 finds the global extremum among alive
  // elements (per-slot reduction folded in scalar code); pass 2 locates
  // its first holder, records (value, global index) to scalar memory,
  // and clears that element's alive bit. O(k * slots) reductions total.
  KernelBuilder b;
  b.standard_prologue();
  b.comment("alive := validity (working copy)");
  {
    const auto loop = b.begin_slot_loop(lay.slots, "r1", "r2", "p1");
    b.line("plw p2, " + std::to_string(lay.valid()) + "(p1)");
    b.line("psw p2, " + std::to_string(lay.alive()) + "(p1)");
    b.end_slot_loop(loop, "r1", "r2");
  }
  b.line("npes r5");
  b.line("li r10, 0");  // extraction counter
  const auto kloop = b.fresh("extract");
  b.label(kloop);
  b.comment(ascending ? "pass 1: global minimum among alive"
                      : "pass 1: global maximum among alive");
  b.line(ascending ? "li r3, -1" : "li r3, 0");
  {
    const auto loop = b.begin_slot_loop(lay.slots, "r1", "r2", "p1");
    const auto skip = b.fresh("keep");
    b.line("plw p2, " + std::to_string(lay.values()) + "(p1)");
    b.line("plw p3, " + std::to_string(lay.alive()) + "(p1)");
    b.line("pcnes pf2, r0, p3");
    b.line(std::string(ascending ? "rminu" : "rmaxu") + " r4, p2 ?pf2");
    if (ascending)
      b.line("cltu sf1, r4, r3");
    else
      b.line("cltu sf1, r3, r4");
    b.line("bfclr sf1, " + skip);
    b.line("mov r3, r4");
    b.label(skip);
    b.end_slot_loop(loop, "r1", "r2");
  }
  b.comment("pass 2: first alive holder of the extremum");
  b.line("li r6, 0");  // slot base index
  {
    const auto loop = b.begin_slot_loop(lay.slots, "r1", "r2", "p1");
    const auto next = b.fresh("next");
    const auto done = b.fresh("found");
    b.line("plw p2, " + std::to_string(lay.values()) + "(p1)");
    b.line("plw p3, " + std::to_string(lay.alive()) + "(p1)");
    b.line("pcnes pf2, r0, p3");
    b.line("pceqs pf1, r3, p2");
    b.line("pfand pf1, pf1, pf2");
    b.line("rany r4, pf1");
    b.line("beq r4, r0, " + next);
    b.line("rsel pf3, pf1");
    b.line("rmaxu r4, p6 ?pf3");
    b.line("add r7, r6, r4");
    b.comment("record (value, index); K is in r9");
    b.line("sw r3, 0(r10)");
    b.line("add r8, r10, r9");
    b.line("sw r7, 0(r8)");
    b.comment("clear the winner's alive bit");
    b.line("pmovi p4, 0");
    b.line("psw p4, " + std::to_string(lay.alive()) + "(p1) ?pf3");
    b.line("j " + done);
    b.label(next);
    b.line("add r6, r6, r5");
    b.end_slot_loop(loop, "r1", "r2");
    b.label(done);
  }
  b.line("addi r10, r10, 1");
  b.line("bne r10, r9, " + kloop);
  b.line("halt");

  AscMachine m(cfg_);
  m.load_source(b.str());
  m.bind_strided(lay.values(), values_);
  m.bind_strided_validity(lay.valid(), values_.size());
  m.set_arg(kArg1, k);

  Result res;
  res.outcome = m.run();
  expect(res.outcome.finished, "sort kernel timed out");
  for (std::uint32_t i = 0; i < k; ++i) {
    res.sorted.push_back(m.mem(i));
    res.permutation.push_back(m.mem(k + i));
  }
  return res;
}

AscSorter::Result AscSorter::sort_ascending() {
  return extract(static_cast<std::uint32_t>(values_.size()), /*ascending=*/true);
}

AscSorter::Result AscSorter::smallest_k(std::uint32_t k) {
  return extract(k, /*ascending=*/true);
}

AscSorter::Result AscSorter::largest_k(std::uint32_t k) {
  return extract(k, /*ascending=*/false);
}

}  // namespace masc::asc
