// Concurrent associative queries — the workload shape the multithreaded
// design exists for: many independent searches over one shared
// in-memory table. Each hardware thread processes a slice of the query
// batch; while one thread waits out its reduction latency, the others
// keep the issue slot and the broadcast/reduction networks full
// (the networks accept one operation per cycle, paper §6.4).
#pragma once

#include <cstdint>
#include <vector>

#include "asclib/asc_machine.hpp"

namespace masc::asc {

class ConcurrentQueries {
 public:
  /// The table is distributed round-robin across PEs (shared by all
  /// threads — local memory is thread-shared, paper §6.2).
  ConcurrentQueries(const MachineConfig& cfg, std::vector<Word> table);

  struct BatchResult {
    std::vector<Word> counts;  ///< responder count per query
    RunOutcome outcome;
  };

  /// Run one exact-match query per batch entry, split across all
  /// hardware threads. Up to 64 queries per batch.
  BatchResult count_equal(const std::vector<Word>& keys);

  /// Range queries: count of lo <= field <= hi per (lo, hi) pair.
  BatchResult count_in_range(const std::vector<std::pair<Word, Word>>& ranges);

 private:
  BatchResult run_batch(std::size_t num_queries, bool range,
                        const std::vector<Word>& arg_words);

  MachineConfig cfg_;
  std::vector<Word> table_;
};

}  // namespace masc::asc
