// Associative selection sort / top-k extraction.
//
// The textbook ASC idiom: repeatedly (1) min-reduce the remaining set,
// (2) resolve the first responder holding the minimum, (3) read its
// index, (4) knock it out of the candidate set. Each extraction is O(1)
// parallel work plus two reductions, so a full sort is O(n) machine
// rounds where a serial selection sort does O(n^2) comparisons — the
// same shape of win as the MST kernel. Top-k simply stops early.
#pragma once

#include <cstdint>
#include <vector>

#include "asclib/asc_machine.hpp"

namespace masc::asc {

class AscSorter {
 public:
  /// Elements are distributed round-robin across PEs (slots), so tables
  /// larger than the array are supported (3 * ceil(n/p) <= 255 local
  /// addresses). Unsigned ordering; ties resolve in element order.
  AscSorter(const MachineConfig& cfg, std::vector<Word> values);

  struct Result {
    std::vector<Word> sorted;             ///< extracted values, in order
    std::vector<std::size_t> permutation; ///< original index of each output
    RunOutcome outcome;
  };

  /// Full ascending sort (n extractions).
  Result sort_ascending();
  /// The k smallest values, ascending.
  Result smallest_k(std::uint32_t k);
  /// The k largest values, descending.
  Result largest_k(std::uint32_t k);

  std::size_t size() const { return values_.size(); }

 private:
  Result extract(std::uint32_t k, bool ascending);

  MachineConfig cfg_;
  std::vector<Word> values_;
};

}  // namespace masc::asc
