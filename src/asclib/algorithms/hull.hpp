// Associative Quickhull (2-D convex hull).
//
// One point per PE. Each Quickhull step is O(1) parallel work (two
// broadcast subtractions + two multiplies to form every point's cross
// product against the current edge) plus two reductions (max-distance
// selection, responder pick) — so the machine does O(h) rounds for an
// h-vertex hull, versus O(n log n)/O(n h) serial comparisons. Recursion
// runs as a software stack in scalar memory with per-frame candidate
// masks parked in PE local memory, demonstrating nontrivial control flow
// on the architecture.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "asclib/asc_machine.hpp"

namespace masc::asc {

class AscHull {
 public:
  using Point = std::pair<Word, Word>;  ///< (x, y), unsigned coordinates

  /// Requires: 3 <= n <= min(num_pes, 100); coordinates small enough
  /// that cross products cannot overflow the signed word range
  /// (2 * max_coord^2 < 2^(w-1)).
  AscHull(const MachineConfig& cfg, std::vector<Point> points);

  struct Result {
    std::vector<Point> hull;  ///< hull vertices (unordered set)
    RunOutcome outcome;
  };

  Result run();

  /// Host reference: Andrew's monotone chain, collinear points excluded.
  static std::vector<Point> reference_hull(std::vector<Point> points);

 private:
  MachineConfig cfg_;
  std::vector<Point> points_;
};

}  // namespace masc::asc
