// Associative string matching.
//
// Every text position is a candidate match handled by one PE (wrapping
// into slots for long texts). Since the prototype has no inter-PE
// network, each candidate's m-character window is staged into its PE's
// local memory by the host (the classic trade of memory for
// communication on pure associative machines). Matching then runs in
// O(m) broadcast-compare steps independent of text length per slot:
// for each pattern offset j, broadcast pattern[j] and AND the
// equality flags; surviving responders are match positions.
#pragma once

#include <string>
#include <vector>

#include "asclib/asc_machine.hpp"

namespace masc::asc {

class StringMatcher {
 public:
  StringMatcher(const MachineConfig& cfg, std::string text);

  struct Result {
    std::vector<std::size_t> positions;  ///< all match positions, ascending
    Word count = 0;
    RunOutcome outcome;
  };

  Result find_all(const std::string& pattern);

  /// Host reference (naive scan).
  static std::vector<std::size_t> reference_find(const std::string& text,
                                                 const std::string& pattern);

 private:
  MachineConfig cfg_;
  std::string text_;
};

}  // namespace masc::asc
