// Minimum spanning tree in the classic ASC formulation (Prim's algorithm
// with associative min-reduction and responder selection).
//
// One vertex per PE; each PE's local memory holds its adjacency row.
// Each of the n-1 iterations does O(1) parallel work plus two
// reductions, giving the O(n) ASC running time that made MST a flagship
// demonstration of associative computing (Potter et al. [4]).
#pragma once

#include <cstdint>
#include <vector>

#include "asclib/asc_machine.hpp"

namespace masc::asc {

class AscMst {
 public:
  /// `weights[i][j]` is the edge weight between vertices i and j;
  /// use kNoEdge for absent edges. Must be symmetric with a zero
  /// diagonal; the graph must be connected. Requires n <= num_pes and
  /// n <= 255 (local-memory addressing).
  static constexpr Word kNoEdge = 0xFFFF;

  AscMst(const MachineConfig& cfg, std::vector<std::vector<Word>> weights);

  struct Result {
    Word total_weight = 0;
    std::vector<PEIndex> order;  ///< vertices in tree-insertion order
    RunOutcome outcome;
  };

  Result run();

  /// Host reference (Prim's, O(n^2)) for validation and benchmarking.
  static Word reference_weight(const std::vector<std::vector<Word>>& weights);

 private:
  MachineConfig cfg_;
  std::vector<std::vector<Word>> weights_;
};

}  // namespace masc::asc
