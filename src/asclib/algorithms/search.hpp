// Associative (tabular) database search — the canonical ASC workload
// (paper §2: search all PEs in parallel, detect/count/pick responders,
// find extrema).
//
// A table of records is distributed one record per PE, wrapping into
// local-memory slots when there are more records than PEs. Queries run
// entirely on the machine: compare-broadcast + responder reductions per
// slot, with a validity column masking the tail padding.
#pragma once

#include <cstdint>
#include <vector>

#include "asclib/asc_machine.hpp"

namespace masc::asc {

class AssociativeSearch {
 public:
  /// `field` holds the searchable field of each record (unsigned words).
  AssociativeSearch(const MachineConfig& cfg, std::vector<Word> field);

  struct MatchResult {
    Word count = 0;                        ///< number of responders
    bool any = false;                      ///< some/none responder signal
    std::vector<std::size_t> positions;    ///< record indices of responders
    RunOutcome outcome;
  };

  /// Records with field == key.
  MatchResult exact_match(Word key);
  /// Records with lo <= field <= hi (unsigned).
  MatchResult range_query(Word lo, Word hi);

  struct ExtremumResult {
    Word value = 0;
    std::size_t position = 0;  ///< first record attaining the extremum
    RunOutcome outcome;
  };

  /// Maximum/minimum field value and the first record attaining it.
  ExtremumResult max_field();
  ExtremumResult min_field();

  std::size_t size() const { return field_.size(); }

 private:
  enum class Cmp { kEq, kRange };
  MatchResult match_query(Cmp cmp, Word a, Word b);
  AscMachine fresh_machine(const std::string& src);

  MachineConfig cfg_;
  std::vector<Word> field_;
};

}  // namespace masc::asc
