#include "asclib/algorithms/query.hpp"

#include "asclib/kernels.hpp"
#include "common/error.hpp"

namespace masc::asc {

namespace {

/// Scalar-memory layout: query arguments from address 0 (one word per
/// exact-match query; lo/hi pairs for ranges), results from kResultBase.
constexpr Addr kResultBase = 256;

}  // namespace

ConcurrentQueries::ConcurrentQueries(const MachineConfig& cfg,
                                     std::vector<Word> table)
    : cfg_(cfg), table_(std::move(table)) {
  expect(!table_.empty(), "ConcurrentQueries: empty table");
  const auto slots = slots_for(table_.size(), cfg_.num_pes);
  expect(2 * slots <= 255 && 2 * slots <= cfg_.local_mem_bytes,
         "ConcurrentQueries: table too large for local memory layout");
}

ConcurrentQueries::BatchResult ConcurrentQueries::run_batch(
    std::size_t num_queries, bool range, const std::vector<Word>& arg_words) {
  expect(num_queries >= 1 && num_queries <= 64,
         "ConcurrentQueries: batch size must be in [1, 64]");
  const std::uint32_t slots = slots_for(table_.size(), cfg_.num_pes);
  const std::string S = std::to_string(slots);

  // Worker threads grab queries tid, tid+T, tid+2T, ...; every context
  // (including thread 0, which falls through after spawning) runs the
  // same worker body and exits, ending the machine without HALT.
  KernelBuilder k;
  k.label("main");
  k.line("nthreads r1");
  k.line("li r2, 1");
  k.line("la r3, worker");
  const auto spawn = k.fresh("spawn");
  k.label(spawn);
  k.line("bgeu r2, r1, body");
  k.line("tspawn r4, r3");
  k.line("addi r2, r2, 1");
  k.line("j " + spawn);
  k.label("worker");
  k.label("body");
  k.line("nthreads r1");
  k.line("tid r10");
  k.line("pindex p6");
  k.line("li r11, " + std::to_string(num_queries));
  const auto qloop = k.fresh("qloop");
  const auto qdone = k.fresh("qdone");
  k.label(qloop);
  k.line("bgeu r10, r11, " + qdone);
  if (range) {
    k.line("slli r12, r10, 1");   // arg address = 2 * query
    k.line("lw r8, 0(r12)");      // lo
    k.line("lw r9, 1(r12)");      // hi
  } else {
    k.line("lw r8, 0(r10)");      // key
  }
  k.line("li r13, 0");
  {
    const auto sloop = k.fresh("sloop");
    k.line("li r5, 0");
    k.line("li r6, " + S);
    k.label(sloop);
    k.line("pbcast p1, r5");
    k.line("plw p2, 0(p1)");
    k.line("plw p3, " + S + "(p1)");
    k.line("pcnes pf2, r0, p3");
    if (range) {
      k.line("pcleus pf1, r8, p2");
      k.line("pcgeus pf3, r9, p2");
      k.line("pfand pf1, pf1, pf3");
    } else {
      k.line("pceqs pf1, r8, p2");
    }
    k.line("pfand pf1, pf1, pf2");
    k.line("rcount r3, pf1");
    k.line("add r13, r13, r3");
    k.line("addi r5, r5, 1");
    k.line("bne r5, r6, " + sloop);
  }
  k.line("addi r12, r10, " + std::to_string(kResultBase));
  k.line("sw r13, 0(r12)");
  k.line("add r10, r10, r1");
  k.line("j " + qloop);
  k.label(qdone);
  k.line("texit");

  AscMachine m(cfg_);
  m.load_source(k.str());
  m.bind_strided(0, table_);
  m.bind_strided_validity(slots, table_.size());
  m.bind_scalar_mem(0, arg_words);

  BatchResult res;
  res.outcome = m.run();
  expect(res.outcome.finished, "query batch timed out");
  for (std::size_t q = 0; q < num_queries; ++q)
    res.counts.push_back(m.mem(kResultBase + static_cast<Addr>(q)));
  return res;
}

ConcurrentQueries::BatchResult ConcurrentQueries::count_equal(
    const std::vector<Word>& keys) {
  return run_batch(keys.size(), /*range=*/false, keys);
}

ConcurrentQueries::BatchResult ConcurrentQueries::count_in_range(
    const std::vector<std::pair<Word, Word>>& ranges) {
  std::vector<Word> args;
  for (const auto& [lo, hi] : ranges) {
    args.push_back(lo);
    args.push_back(hi);
  }
  return run_batch(ranges.size(), /*range=*/true, args);
}

}  // namespace masc::asc
