#include "asclib/algorithms/search.hpp"

#include "asclib/kernels.hpp"
#include "common/error.hpp"

namespace masc::asc {

namespace {

/// Local-memory layout: field column(s) at [0, S), validity at [S, 2S),
/// responder bitmap written by the kernel at [2S, 3S).
struct Layout {
  std::uint32_t slots;
  Addr field() const { return 0; }
  Addr valid() const { return slots; }
  Addr bitmap() const { return 2 * slots; }
};

}  // namespace

AssociativeSearch::AssociativeSearch(const MachineConfig& cfg,
                                     std::vector<Word> field)
    : cfg_(cfg), field_(std::move(field)) {
  expect(!field_.empty(), "AssociativeSearch: empty table");
  const auto slots = slots_for(field_.size(), cfg_.num_pes);
  // plw/psw offsets are 9-bit immediates; 3 columns must stay reachable.
  expect(3 * slots <= 255, "AssociativeSearch: table too large for layout");
  expect(3 * slots <= cfg_.local_mem_bytes,
         "AssociativeSearch: local memory too small");
}

AscMachine AssociativeSearch::fresh_machine(const std::string& src) {
  AscMachine m(cfg_);
  m.load_source(src);
  const Layout lay{slots_for(field_.size(), cfg_.num_pes)};
  m.bind_strided(lay.field(), field_);
  m.bind_strided_validity(lay.valid(), field_.size());
  return m;
}

AssociativeSearch::MatchResult AssociativeSearch::match_query(Cmp cmp, Word a,
                                                              Word b) {
  const Layout lay{slots_for(field_.size(), cfg_.num_pes)};
  KernelBuilder k;
  k.standard_prologue();
  k.line("li r13, 0");
  const auto loop = k.begin_slot_loop(lay.slots, "r1", "r2", "p1");
  k.line("plw p2, " + std::to_string(lay.field()) + "(p1)");
  k.line("plw p3, " + std::to_string(lay.valid()) + "(p1)");
  k.line("pcnes pf2, r0, p3");
  if (cmp == Cmp::kEq) {
    k.comment("responders: field == key (key in r8)");
    k.line("pceqs pf1, r8, p2");
  } else {
    k.comment("responders: lo <= field <= hi (lo in r8, hi in r9)");
    k.line("pcleus pf1, r8, p2");
    k.line("pcgeus pf3, r9, p2");
    k.line("pfand pf1, pf1, pf3");
  }
  k.line("pfand pf1, pf1, pf2");
  k.line("rcount r3, pf1");
  k.line("add r13, r13, r3");
  k.flag_to_word("p4", "pf1");
  k.line("psw p4, " + std::to_string(lay.bitmap()) + "(p1)");
  k.end_slot_loop(loop, "r1", "r2");
  k.line("halt");

  AscMachine m = fresh_machine(k.str());
  m.set_arg(kArg0, a);
  m.set_arg(kArg1, b);

  MatchResult res;
  res.outcome = m.run();
  expect(res.outcome.finished, "search kernel timed out");
  res.count = m.result(kRes0);
  res.any = res.count != 0;
  const auto bitmap = m.read_strided(lay.bitmap(), field_.size());
  for (std::size_t i = 0; i < bitmap.size(); ++i)
    if (bitmap[i]) res.positions.push_back(i);
  return res;
}

AssociativeSearch::MatchResult AssociativeSearch::exact_match(Word key) {
  return match_query(Cmp::kEq, key, 0);
}

AssociativeSearch::MatchResult AssociativeSearch::range_query(Word lo, Word hi) {
  return match_query(Cmp::kRange, lo, hi);
}

namespace {

/// Shared max/min kernel: pass 1 reduces the extremum across slots into
/// r13; pass 2 locates the first record attaining it (index into r14).
std::string extremum_kernel(const Layout& lay, bool maximize) {
  KernelBuilder k;
  k.standard_prologue();
  k.line(maximize ? "li r13, 0" : "li r13, -1");  // identity for unsigned
  {
    const auto loop = k.begin_slot_loop(lay.slots, "r1", "r2", "p1");
    k.line("plw p2, " + std::to_string(lay.field()) + "(p1)");
    k.line("plw p3, " + std::to_string(lay.valid()) + "(p1)");
    k.line("pcnes pf2, r0, p3");
    k.line(std::string(maximize ? "rmaxu" : "rminu") + " r3, p2 ?pf2");
    const auto keep = k.fresh("keep");
    // Update the running extremum. Empty slots return the reduction
    // identity, which never wins the comparison.
    if (maximize) {
      k.line("cltu sf1, r13, r3");
    } else {
      k.line("cltu sf1, r3, r13");
    }
    k.line("bfclr sf1, " + keep);
    k.line("mov r13, r3");
    k.label(keep);
    k.end_slot_loop(loop, "r1", "r2");
  }
  k.comment("pass 2: first record with field == extremum");
  k.line("npes r5");
  k.line("li r6, 0");  // index of slot base
  {
    const auto loop = k.begin_slot_loop(lay.slots, "r1", "r2", "p1");
    const auto next = k.fresh("next");
    const auto done = k.fresh("done");
    k.line("plw p2, " + std::to_string(lay.field()) + "(p1)");
    k.line("plw p3, " + std::to_string(lay.valid()) + "(p1)");
    k.line("pcnes pf2, r0, p3");
    k.line("pceqs pf1, r13, p2");
    k.line("pfand pf1, pf1, pf2");
    k.line("rany r3, pf1");
    k.line("beq r3, r0, " + next);
    k.first_responder_index("r4", "pf1", "pf3");
    k.line("add r14, r6, r4");
    k.line("j " + done);
    k.label(next);
    k.line("add r6, r6, r5");
    k.end_slot_loop(loop, "r1", "r2");
    k.label(done);
  }
  k.line("halt");
  return k.str();
}

}  // namespace

AssociativeSearch::ExtremumResult AssociativeSearch::max_field() {
  const Layout lay{slots_for(field_.size(), cfg_.num_pes)};
  AscMachine m = fresh_machine(extremum_kernel(lay, /*maximize=*/true));
  ExtremumResult res;
  res.outcome = m.run();
  expect(res.outcome.finished, "max_field kernel timed out");
  res.value = m.result(kRes0);
  res.position = m.result(kRes1);
  return res;
}

AssociativeSearch::ExtremumResult AssociativeSearch::min_field() {
  const Layout lay{slots_for(field_.size(), cfg_.num_pes)};
  AscMachine m = fresh_machine(extremum_kernel(lay, /*maximize=*/false));
  ExtremumResult res;
  res.outcome = m.run();
  expect(res.outcome.finished, "min_field kernel timed out");
  res.value = m.result(kRes0);
  res.position = m.result(kRes1);
  return res;
}

}  // namespace masc::asc
