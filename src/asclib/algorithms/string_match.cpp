#include "asclib/algorithms/string_match.hpp"

#include "asclib/kernels.hpp"
#include "common/error.hpp"

namespace masc::asc {

StringMatcher::StringMatcher(const MachineConfig& cfg, std::string text)
    : cfg_(cfg), text_(std::move(text)) {
  expect(!text_.empty(), "StringMatcher: empty text");
}

StringMatcher::Result StringMatcher::find_all(const std::string& pattern) {
  const std::size_t n = text_.size();
  const auto m_len = static_cast<std::uint32_t>(pattern.size());
  expect(m_len >= 1, "find_all: empty pattern");
  Result res;
  if (m_len > n) return res;

  const std::size_t positions = n - m_len + 1;
  const std::uint32_t p = cfg_.num_pes;
  const std::uint32_t slots = slots_for(positions, p);

  // Local layout per candidate position: its m-character window, one
  // column group per slot: window char j of slot s lives at s*m + j...
  // plus a validity column and a result bitmap column at the end.
  const Addr valid_base = static_cast<Addr>(slots) * m_len;
  const Addr bitmap_base = valid_base + slots;
  expect(bitmap_base + slots <= cfg_.local_mem_bytes,
         "find_all: text too large for local memory");
  expect(bitmap_base + slots <= 255, "find_all: layout exceeds addressing");

  KernelBuilder k;
  k.standard_prologue();
  k.line("li r13, 0");
  // Outer loop over slots: address column base = slot * m.
  const auto outer = k.fresh("outer");
  k.line("li r1, 0");                              // slot
  k.line("li r2, " + std::to_string(slots));
  k.line("li r5, 0");                              // slot * m
  k.label(outer);
  k.line("pfset pf1");                             // running match flag
  {
    // Inner loop over pattern offsets.
    const auto inner = k.fresh("inner");
    k.line("li r3, 0");
    k.line("la r6, pat");
    k.label(inner);
    k.line("add r4, r5, r3");                      // window char address
    k.line("pbcast p1, r4");
    k.line("plw p2, 0(p1)");
    k.line("lw r7, 0(r6)");                        // pattern[j]
    k.line("pceqs pf2, r7, p2");
    k.line("pfand pf1, pf1, pf2");
    k.line("addi r3, r3, 1");
    k.line("addi r6, r6, 1");
    k.line("blt r3, r12, " + inner);               // r12 = m (arg)
  }
  k.comment("mask invalid tail candidates");
  k.line("pbcast p1, r1");
  k.line("plw p3, " + std::to_string(valid_base) + "(p1)");
  k.line("pcnes pf3, r0, p3");
  k.line("pfand pf1, pf1, pf3");
  k.line("rcount r4, pf1");
  k.line("add r13, r13, r4");
  k.flag_to_word("p4", "pf1");
  k.line("psw p4, " + std::to_string(bitmap_base) + "(p1)");
  k.line("add r5, r5, r12");
  k.line("addi r1, r1, 1");
  k.line("bne r1, r2, " + outer);
  k.line("halt");
  k.line(".data");
  k.label("pat");
  {
    std::string words = ".word ";
    for (std::uint32_t j = 0; j < m_len; ++j) {
      words += std::to_string(static_cast<unsigned char>(pattern[j]));
      if (j + 1 < m_len) words += ", ";
    }
    k.line(words);
  }

  AscMachine machine(cfg_);
  machine.load_source(k.str());
  // Stage each candidate's window: candidate i -> PE i%p, slot i/p.
  auto& st = machine.machine().state();
  for (std::size_t i = 0; i < positions; ++i) {
    const auto pe = static_cast<PEIndex>(i % p);
    const auto slot = static_cast<Addr>(i / p);
    for (std::uint32_t j = 0; j < m_len; ++j)
      st.set_local_mem(pe, slot * m_len + j,
                       static_cast<unsigned char>(text_[i + j]));
  }
  machine.bind_strided_validity(valid_base, positions);
  machine.set_arg(12, m_len);

  res.outcome = machine.run();
  expect(res.outcome.finished, "string match kernel timed out");
  res.count = machine.result(kRes0);
  const auto bitmap = machine.read_strided(bitmap_base, positions);
  for (std::size_t i = 0; i < positions; ++i)
    if (bitmap[i]) res.positions.push_back(i);
  return res;
}

std::vector<std::size_t> StringMatcher::reference_find(
    const std::string& text, const std::string& pattern) {
  std::vector<std::size_t> out;
  if (pattern.empty() || pattern.size() > text.size()) return out;
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i)
    if (text.compare(i, pattern.size(), pattern) == 0) out.push_back(i);
  return out;
}

}  // namespace masc::asc
