#include "asclib/algorithms/mst.hpp"

#include <algorithm>

#include "asclib/kernels.hpp"
#include "common/error.hpp"

namespace masc::asc {

AscMst::AscMst(const MachineConfig& cfg, std::vector<std::vector<Word>> weights)
    : cfg_(cfg), weights_(std::move(weights)) {
  const std::size_t n = weights_.size();
  expect(n >= 2, "AscMst: need at least two vertices");
  expect(n <= cfg_.num_pes, "AscMst: more vertices than PEs");
  expect(n <= 255, "AscMst: adjacency rows exceed local-memory addressing");
  expect(n + 1 <= cfg_.local_mem_bytes, "AscMst: local memory too small");
  for (const auto& row : weights_)
    expect(row.size() == n, "AscMst: adjacency matrix not square");
}

AscMst::Result AscMst::run() {
  const auto n = static_cast<std::uint32_t>(weights_.size());

  // Kernel registers:
  //   p1 dist to tree, p2 broadcast scratch, p3 fetched weight column
  //   pf1 in-tree, pf2 candidates, pf3 responders, pf4 selected, pf5 valid
  //   r13 total weight, r1 loop counter, r3 current min, r4 new vertex id
  // Vertex insertion order is written to scalar memory at [0, n).
  KernelBuilder k;
  k.standard_prologue();
  k.comment("valid vertices: pe < n   (n in r8)");
  k.line("pcgts pf5, r8, p6");
  k.comment("start from vertex 0: in-tree = {0}");
  k.line("pfclr pf1");
  k.line("pceqs pf4, r0, p6");
  k.line("pfor pf1, pf1, pf4");
  k.comment("dist_i = w(i, 0)");
  k.line("pbcast p2, r0");
  k.line("plw p1, 0(p2)");
  k.line("li r13, 0");
  k.line("sw r0, 0(r0)");  // order[0] = vertex 0
  k.line("li r1, 1");      // vertices added so far
  k.line("li r2, " + std::to_string(n));
  const auto loop = k.fresh("mst_loop");
  k.label(loop);
  k.comment("candidates = valid & ~in-tree");
  k.line("pfandn pf2, pf5, pf1");
  k.comment("global min distance over candidates");
  k.line("rminu r3, p1 ?pf2");
  k.comment("responders: candidates at the min; pick the first");
  k.line("pceqs pf3, r3, p1");
  k.line("pfand pf3, pf3, pf2");
  k.first_responder_index("r4", "pf3", "pf4");
  k.line("add r13, r13, r3");
  k.line("sw r4, 0(r1)");  // record insertion order
  k.comment("add the selected vertex to the tree (pf4 is its one-hot)");
  k.line("pfor pf1, pf1, pf4");
  k.comment("dist_i = min(dist_i, w(i, new))");
  k.line("pbcast p2, r4");
  k.line("plw p3, 0(p2)");
  k.line("pcltu pf4, p3, p1");
  k.line("pmov p1, p3 ?pf4");
  k.line("addi r1, r1, 1");
  k.line("bne r1, r2, " + loop);
  k.line("halt");

  AscMachine m(cfg_);
  m.load_source(k.str());
  for (PEIndex i = 0; i < n; ++i) {
    std::vector<Word> row = weights_[i];
    auto& st = m.machine().state();
    for (std::uint32_t j = 0; j < n; ++j) st.set_local_mem(i, j, row[j]);
  }
  m.set_arg(kArg0, n);

  Result res;
  res.outcome = m.run();
  expect(res.outcome.finished, "MST kernel timed out");
  res.total_weight = m.result(kRes0);
  for (std::uint32_t i = 0; i < n; ++i)
    res.order.push_back(static_cast<PEIndex>(m.mem(i)));
  return res;
}

Word AscMst::reference_weight(const std::vector<std::vector<Word>>& weights) {
  const std::size_t n = weights.size();
  std::vector<Word> dist(n, kNoEdge);
  std::vector<bool> in_tree(n, false);
  Word total = 0;
  in_tree[0] = true;
  for (std::size_t i = 0; i < n; ++i) dist[i] = weights[0][i];
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t best = 0;
    Word best_w = kNoEdge;
    bool found = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      if (!found || dist[v] < best_w) {
        best = v;
        best_w = dist[v];
        found = true;
      }
    }
    total += best_w;
    in_tree[best] = true;
    for (std::size_t v = 0; v < n; ++v)
      if (!in_tree[v]) dist[v] = std::min(dist[v], weights[best][v]);
  }
  return total;
}

}  // namespace masc::asc
