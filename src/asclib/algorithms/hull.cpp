#include "asclib/algorithms/hull.hpp"

#include <algorithm>
#include <set>

#include "asclib/kernels.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/saturate.hpp"

namespace masc::asc {

namespace {

// Scalar-memory layout.
// The stack may hold up to 2 + 2n frames of 5 words (n <= 100), so the
// hull output area starts well clear of it.
constexpr Addr kStackBase = 256;   // software recursion stack (5-word frames)
constexpr Addr kHullBase = 2048;   // output hull points, (x, y) pairs
// Local-memory layout: columns 0/1 hold x/y; candidate-mask columns
// follow from column 2, allocated monotonically (never reused).
constexpr int kFirstMaskCol = 2;

/// Emit cross-product computation: p5 <- (B-A) x (P-A) for every PE's
/// point P = (p1, p2), with the edge endpoints in scalar registers.
/// Uses r14/r15 and p3/p4 as scratch.
void emit_cross(KernelBuilder& k, const char* ax, const char* ay,
                const char* bx, const char* by) {
  k.comment(std::string("cross = (") + bx + "-" + ax + ")*(py-" + ay +
            ") - (" + by + "-" + ay + ")*(px-" + ax + ")");
  k.line(std::string("sub r14, ") + bx + ", " + ax);
  k.line(std::string("sub r15, ") + by + ", " + ay);
  k.line(std::string("pbcast p3, ") + ay);
  k.line("psub p3, p2, p3");
  k.line("pmuls p4, r14, p3");
  k.line(std::string("pbcast p3, ") + ax);
  k.line("psub p3, p1, p3");
  k.line("pmuls p3, r15, p3");
  k.line("psub p5, p4, p3");
}

/// Emit: compute candidates strictly left of edge (ax,ay)->(bx,by) among
/// parallel flag `among`, store as a fresh mask column (counter in r1),
/// and push the frame (ax ay bx by col) on the stack (sp in r7).
void emit_partition_and_push(KernelBuilder& k, const char* ax, const char* ay,
                             const char* bx, const char* by,
                             const char* among) {
  emit_cross(k, ax, ay, bx, by);
  k.line("pclts pf3, r0, p5");  // 0 < cross  (strictly left)
  k.line(std::string("pfand pf3, pf3, ") + among);
  k.flag_to_word("p4", "pf3");
  k.line("pbcast p3, r1");
  k.line("psw p4, 0(p3)");
  k.line(std::string("sw ") + ax + ", 0(r7)");
  k.line(std::string("sw ") + ay + ", 1(r7)");
  k.line(std::string("sw ") + bx + ", 2(r7)");
  k.line(std::string("sw ") + by + ", 3(r7)");
  k.line("sw r1, 4(r7)");
  k.line("addi r7, r7, 5");
  k.line("addi r1, r1, 1");
}

}  // namespace

AscHull::AscHull(const MachineConfig& cfg, std::vector<Point> points)
    : cfg_(cfg), points_(std::move(points)) {
  const std::size_t n = points_.size();
  expect(n >= 3, "AscHull: need at least three points");
  expect(n <= cfg_.num_pes, "AscHull: more points than PEs");
  expect(n <= 100, "AscHull: too many points for the mask-column layout");
  expect(cfg_.num_scalar_regs >= 16, "AscHull: kernel needs 16 scalar registers");
  // Mask columns: at most 2 per recorded hull point + 2 initial.
  expect(kFirstMaskCol + 2 * n + 2 <= cfg_.local_mem_bytes,
         "AscHull: local memory too small");
  Word max_coord = 0;
  for (const auto& [x, y] : points_) max_coord = std::max({max_coord, x, y});
  const DWord worst = 2 * static_cast<DWord>(max_coord) * max_coord;
  const auto limit = static_cast<DWord>(
      sign_extend(signed_max_word(cfg_.word_width), cfg_.word_width));
  expect(worst <= limit,
         "AscHull: coordinates too large — cross products would overflow");
}

AscHull::Result AscHull::run() {
  KernelBuilder k;
  // Register map: r2..r5 current edge (A, B); r6 hull write pointer;
  // r7 stack pointer; r8 = n (arg); r9 popped mask column; r10/r11 the
  // farthest point F (and scratch); r12 stack base; r13 hull count;
  // r1 next free mask column; r14/r15 cross-product scratch.
  k.standard_prologue();
  k.line("pcgts pf5, r8, p6");  // valid points: pe < n
  k.line("plw p1, 0(p0)");      // x
  k.line("plw p2, 1(p0)");      // y
  k.line("li r12, " + std::to_string(kStackBase));
  k.line("mov r7, r12");
  k.line("li r6, " + std::to_string(kHullBase));
  k.line("li r1, " + std::to_string(kFirstMaskCol));
  k.line("li r13, 0");

  k.comment("A = a point with minimum x, B = one with maximum x");
  k.line("rminu r2, p1 ?pf5");
  k.line("pceqs pf1, r2, p1");
  k.line("pfand pf1, pf1, pf5");
  k.line("rsel pf2, pf1");
  k.line("rmaxu r3, p2 ?pf2");
  k.line("rmaxu r4, p1 ?pf5");
  k.line("pceqs pf1, r4, p1");
  k.line("pfand pf1, pf1, pf5");
  k.line("rsel pf2, pf1");
  k.line("rmaxu r5, p2 ?pf2");

  k.comment("record A and B as hull vertices");
  k.line("sw r2, 0(r6)");
  k.line("sw r3, 1(r6)");
  k.line("sw r4, 2(r6)");
  k.line("sw r5, 3(r6)");
  k.line("addi r6, r6, 4");
  k.line("li r13, 2");

  k.comment("seed the stack with both sides of the A-B line");
  k.line("pfmov pf1, pf5");
  emit_partition_and_push(k, "r2", "r3", "r4", "r5", "pf1");
  emit_partition_and_push(k, "r4", "r5", "r2", "r3", "pf1");

  const auto loop = k.fresh("qh_loop");
  const auto edge_done = k.fresh("qh_edge");
  const auto done = k.fresh("qh_done");
  k.label(loop);
  k.line("beq r7, r12, " + done);
  k.comment("pop frame: edge (A,B) + candidate mask column");
  k.line("addi r7, r7, -5");
  k.line("lw r2, 0(r7)");
  k.line("lw r3, 1(r7)");
  k.line("lw r4, 2(r7)");
  k.line("lw r5, 3(r7)");
  k.line("lw r9, 4(r7)");
  k.line("pbcast p3, r9");
  k.line("plw p4, 0(p3)");
  k.line("pcnes pf1, r0, p4");
  emit_cross(k, "r2", "r3", "r4", "r5");
  k.line("pclts pf2, r0, p5");
  k.line("pfand pf2, pf2, pf1");
  k.line("rany r10, pf2");
  k.line("beq r10, r0, " + edge_done);
  k.comment("F = candidate with maximum (signed) cross distance");
  k.line("rmax r11, p5 ?pf2");
  k.line("pceqs pf3, r11, p5");
  k.line("pfand pf3, pf3, pf2");
  k.line("rsel pf4, pf3");
  k.line("rmaxu r10, p1 ?pf4");
  k.line("rmaxu r11, p2 ?pf4");
  k.line("sw r10, 0(r6)");
  k.line("sw r11, 1(r6)");
  k.line("addi r6, r6, 2");
  k.line("addi r13, r13, 1");
  k.comment("recurse on (A,F) and (F,B), restricted to this frame's set");
  emit_partition_and_push(k, "r2", "r3", "r10", "r11", "pf1");
  emit_partition_and_push(k, "r10", "r11", "r4", "r5", "pf1");
  k.label(edge_done);
  k.line("j " + loop);
  k.label(done);
  k.line("sw r13, 0(r0)");
  k.line("halt");

  AscMachine m(cfg_);
  m.load_source(k.str());
  std::vector<Word> xs, ys;
  for (const auto& [x, y] : points_) {
    xs.push_back(x);
    ys.push_back(y);
  }
  m.bind_local_column(0, xs);
  m.bind_local_column(1, ys);
  m.set_arg(kArg0, static_cast<Word>(points_.size()));

  Result res;
  res.outcome = m.run();
  expect(res.outcome.finished, "hull kernel timed out");
  const Word count = m.mem(0);
  for (Word i = 0; i < count; ++i)
    res.hull.emplace_back(m.mem(kHullBase + 2 * i), m.mem(kHullBase + 2 * i + 1));
  return res;
}

std::vector<AscHull::Point> AscHull::reference_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n < 3) return points;
  auto cross = [](const Point& o, const Point& a, const Point& b) {
    return static_cast<SDWord>(static_cast<SDWord>(a.first) - o.first) *
               (static_cast<SDWord>(b.second) - o.second) -
           static_cast<SDWord>(static_cast<SDWord>(a.second) - o.second) *
               (static_cast<SDWord>(b.first) - o.first);
  };
  std::vector<Point> hull(2 * n);
  std::size_t sz = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower
    while (sz >= 2 && cross(hull[sz - 2], hull[sz - 1], points[i]) <= 0) --sz;
    hull[sz++] = points[i];
  }
  for (std::size_t i = n - 1, lower = sz + 1; i-- > 0;) {  // upper
    while (sz >= lower && cross(hull[sz - 2], hull[sz - 1], points[i]) <= 0) --sz;
    hull[sz++] = points[i];
  }
  hull.resize(sz - 1);
  return hull;
}

}  // namespace masc::asc
