#include "asclib/algorithms/image.hpp"

#include <algorithm>

#include "asclib/kernels.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/saturate.hpp"

namespace masc::asc {

ImageKernels::ImageKernels(const MachineConfig& cfg) : cfg_(cfg) {}

ImageKernels::GlobalStats ImageKernels::global_stats(
    const std::vector<Word>& pixels) {
  expect(!pixels.empty(), "global_stats: empty image");
  const std::uint32_t slots = slots_for(pixels.size(), cfg_.num_pes);
  expect(2 * slots <= 255 && 2 * slots <= cfg_.local_mem_bytes,
         "global_stats: image too large for local memory layout");

  // Layout: pixels at [0, S), validity at [S, 2S).
  KernelBuilder k;
  k.standard_prologue();
  k.line("li r13, 0");   // sum
  k.line("li r14, -1");  // min (unsigned identity)
  k.line("li r15, 0");   // max
  const auto loop = k.begin_slot_loop(slots, "r1", "r2", "p1");
  k.line("plw p2, 0(p1)");
  k.line("plw p3, " + std::to_string(slots) + "(p1)");
  k.line("pcnes pf2, r0, p3");
  k.comment("per-slot reductions through the sum and max/min units");
  k.line("rsumu r3, p2 ?pf2");
  k.line("rminu r4, p2 ?pf2");
  k.line("rmaxu r5, p2 ?pf2");
  k.line("add r13, r13, r3");
  {
    const auto keep = k.fresh("keepmin");
    k.line("cltu sf1, r4, r14");
    k.line("bfclr sf1, " + keep);
    k.line("mov r14, r4");
    k.label(keep);
  }
  {
    const auto keep = k.fresh("keepmax");
    k.line("cltu sf1, r15, r5");
    k.line("bfclr sf1, " + keep);
    k.line("mov r15, r5");
    k.label(keep);
  }
  k.end_slot_loop(loop, "r1", "r2");
  k.comment("mean = sum / count (count in r8)");
  k.line("divu r12, r13, r8");
  k.line("sw r12, 0(r0)");
  k.line("halt");

  AscMachine m(cfg_);
  m.load_source(k.str());
  m.bind_strided(0, pixels);
  m.bind_strided_validity(slots, pixels.size());
  m.set_arg(kArg0, static_cast<Word>(pixels.size()));

  GlobalStats gs;
  gs.outcome = m.run();
  expect(gs.outcome.finished, "global_stats kernel timed out");
  gs.sum = m.result(kRes0);
  gs.min = m.result(kRes1);
  gs.max = m.result(kRes2);
  gs.mean = m.mem(0);
  return gs;
}

ImageKernels::Histogram ImageKernels::histogram(const std::vector<Word>& pixels,
                                                Word num_bins) {
  expect(!pixels.empty(), "histogram: empty image");
  expect(num_bins >= 1, "histogram: need at least one bin");
  const std::uint32_t slots = slots_for(pixels.size(), cfg_.num_pes);
  expect(2 * slots <= 255 && 2 * slots <= cfg_.local_mem_bytes,
         "histogram: image too large for local memory layout");

  // Outer loop over bins (bin value broadcast as the compare key), inner
  // loop over slots; counts accumulate into scalar memory [bin].
  KernelBuilder k;
  k.standard_prologue();
  const auto bins = k.fresh("bins");
  k.line("li r3, 0");                 // bin value
  k.line("mov r4, r8");               // num_bins (arg)
  k.label(bins);
  k.line("li r13, 0");
  const auto loop = k.begin_slot_loop(slots, "r1", "r2", "p1");
  k.line("plw p2, 0(p1)");
  k.line("plw p3, " + std::to_string(slots) + "(p1)");
  k.line("pcnes pf2, r0, p3");
  k.line("pceqs pf1, r3, p2");
  k.line("pfand pf1, pf1, pf2");
  k.line("rcount r5, pf1");
  k.line("add r13, r13, r5");
  k.end_slot_loop(loop, "r1", "r2");
  k.line("sw r13, 0(r3)");
  k.line("addi r3, r3, 1");
  k.line("bne r3, r4, " + bins);
  k.line("halt");

  AscMachine m(cfg_);
  m.load_source(k.str());
  m.bind_strided(0, pixels);
  m.bind_strided_validity(slots, pixels.size());
  m.set_arg(kArg0, num_bins);

  Histogram h;
  h.outcome = m.run();
  expect(h.outcome.finished, "histogram kernel timed out");
  for (Word b = 0; b < num_bins; ++b) h.bins.push_back(m.mem(b));
  return h;
}

ImageKernels::SadResult ImageKernels::sad_search(
    const std::vector<std::vector<Word>>& windows,
    const std::vector<Word>& tmpl) {
  const auto num_windows = static_cast<std::uint32_t>(windows.size());
  const auto m_len = static_cast<std::uint32_t>(tmpl.size());
  expect(num_windows >= 1 && num_windows <= cfg_.num_pes,
         "sad_search: window count must be in [1, num_pes]");
  expect(m_len >= 1 && m_len <= 254, "sad_search: template too long");
  expect(m_len + 1 <= cfg_.local_mem_bytes, "sad_search: local memory too small");
  for (const auto& w : windows)
    expect(w.size() == m_len, "sad_search: window/template length mismatch");

  // Layout: window pixels at [0, m), template staged in scalar memory.
  // Kernel: for each k, broadcast tmpl[k], accumulate |w[k] - t| in p5.
  KernelBuilder k;
  k.standard_prologue();
  k.comment("valid windows: pe < count (count in r9)");
  k.line("pcgts pf5, r9, p6");
  k.line("pmovi p5, 0");
  const auto loop = k.fresh("sad_loop");
  k.line("li r1, 0");
  k.line("li r2, " + std::to_string(m_len));
  k.line("la r4, tmpl");
  k.label(loop);
  k.line("lw r3, 0(r4)");       // tmpl[k]
  k.line("pbcast p1, r1");
  k.line("plw p2, 0(p1)");      // window pixel k
  k.comment("absolute difference via both subtractions and a select");
  k.line("psubs p3, r3, p2");   // t - w
  k.line("pbcast p4, r3");
  k.line("psub p4, p2, p4");    // w - t
  k.line("pcgtus pf1, r3, p2"); // t > w
  k.line("pmov p4, p3 ?pf1");
  k.line("padd p5, p5, p4");
  k.line("addi r1, r1, 1");
  k.line("addi r4, r4, 1");
  k.line("bne r1, r2, " + loop);
  k.comment("best window: min SAD + first responder");
  k.line("rminu r13, p5 ?pf5");
  k.line("pceqs pf2, r13, p5");
  k.line("pfand pf2, pf2, pf5");
  k.first_responder_index("r14", "pf2", "pf3");
  k.line("halt");
  k.line(".data");
  k.label("tmpl");
  {
    std::string words = ".word ";
    for (std::uint32_t i = 0; i < m_len; ++i) {
      words += std::to_string(tmpl[i]);
      if (i + 1 < m_len) words += ", ";
    }
    k.line(words);
  }

  AscMachine m(cfg_);
  m.load_source(k.str());
  for (PEIndex w = 0; w < num_windows; ++w)
    for (std::uint32_t i = 0; i < m_len; ++i)
      m.machine().state().set_local_mem(w, i, windows[w][i]);
  m.set_arg(kArg1, num_windows);

  SadResult res;
  res.outcome = m.run();
  expect(res.outcome.finished, "sad kernel timed out");
  res.best_sad = m.result(kRes0);
  res.best_window = m.result(kRes1);
  return res;
}

ImageKernels::GlobalStats ImageKernels::reference_stats(
    const std::vector<Word>& pixels, unsigned width) {
  GlobalStats gs;
  gs.min = low_mask(width);
  gs.max = 0;
  Word sum = 0;
  for (const Word p : pixels) {
    // Matches the machine: per-slot saturating tree sums accumulated with
    // wrapping scalar adds would be hard to mirror exactly, so reference
    // users keep pixel ranges small enough that nothing saturates.
    sum = truncate(sum + p, width);
    gs.min = std::min(gs.min, p);
    gs.max = std::max(gs.max, p);
  }
  gs.sum = sum;
  gs.mean = truncate(sum / static_cast<Word>(pixels.size()), width);
  return gs;
}

ImageKernels::SadResult ImageKernels::reference_sad(
    const std::vector<std::vector<Word>>& windows, const std::vector<Word>& tmpl,
    unsigned width) {
  SadResult best;
  best.best_sad = low_mask(width);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    Word sad = 0;
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      const Word a = windows[w][i], b = tmpl[i];
      sad = truncate(sad + (a > b ? a - b : b - a), width);
    }
    if (sad < best.best_sad) {
      best.best_sad = sad;
      best.best_window = w;
    }
  }
  return best;
}

}  // namespace masc::asc
