#include "asclib/algorithms/graph.hpp"

#include <algorithm>
#include <queue>

#include "asclib/asc_machine.hpp"
#include "asclib/kernels.hpp"
#include "assembler/assembler.hpp"
#include "common/error.hpp"

namespace masc::asc {

namespace {

/// Scalar-memory base of the frontier bitmask triple. Words 0..15 are
/// left free for the (empty) program data segment and future use.
constexpr Addr kFrontierBase = 16;

constexpr Cycle kBfsMaxCycles = 200'000'000;

}  // namespace

GraphBfs::GraphBfs(const MachineConfig& cfg, std::uint32_t num_vertices,
                   std::vector<GraphEdge> edges, bool directed)
    : cfg_(cfg), n_(num_vertices) {
  cfg_.validate();
  expect(n_ >= 1, "GraphBfs: graph must have at least one vertex");
  expect(cfg_.word_width >= 16,
         "GraphBfs: word_width must be >= 16 (vertex ids, bitmask words "
         "and level counts are architectural words)");
  // Levels go up to n+1 and must be representable.
  expect(static_cast<std::uint64_t>(n_) + 1 <
             (std::uint64_t{1} << cfg_.word_width),
         "GraphBfs: vertex count does not fit the word width");
  frontier_words_ = (n_ + cfg_.word_width - 1) / cfg_.word_width;

  // Dense per-vertex adjacency bitmasks: adj_[v][j] has bit (u % w) of
  // word j = u / w set for every neighbor u of v.
  adj_.assign(n_, std::vector<Word>(frontier_words_, 0));
  for (const GraphEdge& e : edges) {
    expect(e.u < n_ && e.v < n_, "GraphBfs: edge endpoint out of range");
    adj_[e.u][e.v / cfg_.word_width] |= Word{1} << (e.v % cfg_.word_width);
    if (!directed)
      adj_[e.v][e.u / cfg_.word_width] |= Word{1} << (e.u % cfg_.word_width);
  }
}

std::uint32_t GraphBfs::verts_per_chip(std::uint32_t chips) const {
  return (n_ + chips - 1) / chips;
}

std::uint32_t GraphBfs::slots(std::uint32_t chips) const {
  return slots_for(verts_per_chip(chips), cfg_.num_pes);
}

void GraphBfs::validate_layout(std::uint32_t chips, Addr mailbox_base) const {
  const std::uint32_t s = slots(chips);
  const std::uint32_t nw = frontier_words_;
  // Local columns: VAL, LVL, FW, FM, then nw adjacency columns. The
  // base of the last column must stay a legal 9-bit plw immediate.
  expect((3 + nw) * s <= 255,
         "GraphBfs: graph too large for the plw immediate layout "
         "(reduce vertices per chip: more chips or more PEs)");
  expect((4 + nw) * s <= cfg_.local_mem_bytes,
         "GraphBfs: PE local memory too small for adjacency columns");
  // Scalar bitmasks: frontier, next, visited — all below the mailbox.
  const Addr scalar_end = kFrontierBase + 3 * nw;
  expect(scalar_end <= mailbox_base,
         "GraphBfs: frontier bitmasks would overlap the fabric mailbox");
  expect(scalar_end <= cfg_.scalar_mem_bytes,
         "GraphBfs: scalar memory too small for frontier bitmasks");
}

std::string GraphBfs::kernel_source(std::uint32_t chips, Addr mailbox_base,
                                    bool background) const {
  const std::uint32_t s = slots(chips);
  const std::uint32_t nw = frontier_words_;
  const Addr kVal = 0, kLvl = s, kFw = 2 * s, kFm = 3 * s, kAdj = 4 * s;
  const Addr f0 = kFrontierBase;          // current frontier bitmask
  const Addr n0 = f0 + nw;                // next-frontier accumulator
  const Addr v0 = n0 + nw;                // visited bitmask
  const auto a = [](Addr x) { return std::to_string(x); };

  KernelBuilder k;
  k.standard_prologue();
  k.comment("r4 = mailbox base, r10 = NUM_CHIPS (0 on a bare Machine)");
  k.line("li r4, " + a(mailbox_base));
  k.line("lw r10, " + a(fabric::kMboxNumChips) + "(r4)");
  k.line("li r9, 0");   // completed BFS levels
  k.line("li r13, 0");
  if (background) {
    k.comment("spawn threads 1..T-1 as background reducers (r8 = iters)");
    k.line("beq r8, r0, no_bg");
    k.line("nthreads r2");
    k.line("li r1, 1");
    k.label("spawn_loop");
    k.line("bgeu r1, r2, no_bg");
    k.line("la r5, bg_entry");
    k.line("tspawn r3, r5");
    k.line("tput r12, r8, r3");
    k.line("addi r1, r1, 1");
    k.line("j spawn_loop");
    k.label("no_bg");
  }
  k.label("level_loop");
  k.line("addi r9, r9, 1");
  k.comment("mark phase: valid & unvisited & frontier-bit -> level r9,");
  k.comment("then OR the responders' adjacency words into NEXT");
  const auto loop = k.begin_slot_loop(s, "r1", "r2", "p1");
  k.line("plw p2, " + a(kVal) + "(p1)");
  k.line("pcnes pf2, r0, p2");
  k.line("plw p3, " + a(kLvl) + "(p1)");
  k.line("pceqs pf3, r0, p3");
  k.line("pfand pf2, pf2, pf3");
  k.line("plw p4, " + a(kFw) + "(p1)");
  k.line("plw p5, " + a(kFm) + "(p1)");
  k.line("pfclr pf1");
  for (std::uint32_t j = 0; j < nw; ++j) {
    k.line("li r5, " + std::to_string(j));
    k.line("pceqs pf3, r5, p4");
    k.line("lw r3, " + a(f0 + j) + "(r0)");
    k.line("pands p2, r3, p5");
    k.line("pcnes pf4, r0, p2");
    k.line("pfand pf3, pf3, pf4");
    k.line("pfor pf1, pf1, pf3");
  }
  k.line("pfand pf1, pf1, pf2");
  k.line("pbcast p2, r9");
  k.line("psw p2, " + a(kLvl) + "(p1) ?pf1");
  for (std::uint32_t j = 0; j < nw; ++j) {
    k.line("plw p3, " + a(kAdj + j * s) + "(p1)");
    k.line("ror r3, p3 ?pf1");
    k.line("lw r5, " + a(n0 + j) + "(r0)");
    k.line("or r5, r5, r3");
    k.line("sw r5, " + a(n0 + j) + "(r0)");
  }
  k.end_slot_loop(loop, "r1", "r2");
  k.comment("cross-chip merge: allreduce-OR of NEXT when NUM_CHIPS > 1");
  k.line("li r3, 1");
  k.line("bleu r10, r3, no_fabric");
  k.line("li r3, " + a(n0));
  k.line("sw r3, " + a(fabric::kMboxAddr) + "(r4)");
  k.line("li r3, " + std::to_string(nw));
  k.line("sw r3, " + a(fabric::kMboxCount) + "(r4)");
  k.line("lw r7, " + a(fabric::kMboxAck) + "(r4)");
  k.line("addi r7, r7, 1");
  k.comment("REQ is posted last; then spin until ACK catches up");
  k.line("li r3, " +
         std::to_string(static_cast<int>(fabric::CollectiveOp::kOr)));
  k.line("sw r3, " + a(fabric::kMboxReq) + "(r4)");
  k.label("ack_wait");
  k.line("lw r3, " + a(fabric::kMboxAck) + "(r4)");
  k.line("bne r3, r7, ack_wait");
  k.label("no_fabric");
  k.comment("frontier = NEXT & ~visited; visited |= frontier; NEXT = 0");
  k.line("li r7, 0");
  for (std::uint32_t j = 0; j < nw; ++j) {
    k.line("lw r3, " + a(n0 + j) + "(r0)");
    k.line("lw r5, " + a(v0 + j) + "(r0)");
    k.line("nor r6, r5, r5");
    k.line("and r3, r3, r6");
    k.line("or r5, r5, r3");
    k.line("sw r5, " + a(v0 + j) + "(r0)");
    k.line("sw r3, " + a(f0 + j) + "(r0)");
    k.line("sw r0, " + a(n0 + j) + "(r0)");
    k.line("or r7, r7, r3");
  }
  k.line("bne r7, r0, level_loop");
  k.line("mov r13, r9");
  if (background) {
    k.comment("join the background reducers before halting");
    k.line("beq r8, r0, done");
    k.line("nthreads r2");
    k.line("li r1, 1");
    k.label("join_loop");
    k.line("bgeu r1, r2, done");
    k.line("tjoin r1");
    k.line("addi r1, r1, 1");
    k.line("j join_loop");
    k.label("done");
  }
  k.line("halt");
  if (background) {
    k.comment("background thread: spin for the iteration count (tput");
    k.comment("into r12), then run independent local reductions");
    k.label("bg_entry");
    k.line("beq r12, r0, bg_entry");
    k.line("li r1, 0");
    k.label("bg_loop");
    k.line("rsumu r3, p6");
    k.line("addi r1, r1, 1");
    k.line("bltu r1, r12, bg_loop");
    k.line("texit");
  }
  return k.str();
}

void GraphBfs::bind_chip(ArchState& st, std::uint32_t chip,
                         std::uint32_t chips, std::uint32_t source,
                         Word bg_iterations) const {
  const std::uint32_t vpc = verts_per_chip(chips);
  const std::uint32_t s = slots(chips);
  const std::uint32_t nw = frontier_words_;
  const std::uint32_t p = cfg_.num_pes;
  const unsigned w = cfg_.word_width;
  const Addr kVal = 0, kLvl = s, kFw = 2 * s, kFm = 3 * s, kAdj = 4 * s;
  for (std::uint32_t l = 0; l < vpc; ++l) {
    const std::uint64_t g = static_cast<std::uint64_t>(chip) * vpc + l;
    const PEIndex pe = l % p;
    const Addr slot = l / p;
    const bool valid = g < n_;
    st.set_local_mem(pe, kVal + slot, valid ? 1 : 0);
    st.set_local_mem(pe, kLvl + slot, 0);
    st.set_local_mem(pe, kFw + slot, valid ? static_cast<Word>(g / w) : 0);
    st.set_local_mem(pe, kFm + slot,
                     valid ? Word{1} << (g % w) : 0);
    for (std::uint32_t j = 0; j < nw; ++j)
      st.set_local_mem(pe, kAdj + j * s + slot,
                       valid ? adj_[static_cast<std::size_t>(g)][j] : 0);
  }
  // Frontier = visited = {source}; NEXT = 0. Identical on every chip.
  for (std::uint32_t j = 0; j < nw; ++j) {
    const Word bit = (source / w == j) ? Word{1} << (source % w) : 0;
    st.set_scalar_mem(kFrontierBase + j, bit);
    st.set_scalar_mem(kFrontierBase + nw + j, 0);
    st.set_scalar_mem(kFrontierBase + 2 * nw + j, bit);
  }
  st.set_sreg(0, kArg0, bg_iterations);
}

GraphBfs::Result GraphBfs::collect(
    std::uint32_t chips, const std::vector<const Machine*>& machines) const {
  Result res;
  const std::uint32_t vpc = verts_per_chip(chips);
  const std::uint32_t s = slots(chips);
  const std::uint32_t p = cfg_.num_pes;
  res.level.assign(n_, 0);
  for (std::uint32_t g = 0; g < n_; ++g) {
    const std::uint32_t chip = g / vpc;
    const std::uint32_t l = g % vpc;
    res.level[g] = machines[chip]->state().local_mem(l % p, s + l / p);
  }
  res.levels = machines[0]->state().sreg(0, kRes0);
  return res;
}

GraphBfs::Result GraphBfs::run(std::uint32_t source, Word bg_iterations) const {
  expect(source < n_, "GraphBfs: source out of range");
  expect(bg_iterations == 0 || cfg_.multithreading,
         "GraphBfs: background work needs multithreading enabled");
  const fabric::FabricConfig defaults;  // mailbox location only
  validate_layout(1, defaults.mailbox_base);
  Machine m(cfg_);
  m.load(assemble(kernel_source(1, defaults.mailbox_base,
                                bg_iterations > 0)));
  bind_chip(m.state(), 0, 1, source, bg_iterations);
  expect(m.run(kBfsMaxCycles), "GraphBfs: kernel timed out");
  Result res = collect(1, {&m});
  res.fleet = m.stats();
  res.cycles = res.fleet.cycles;
  return res;
}

GraphBfs::Result GraphBfs::run(std::uint32_t source,
                               const fabric::FabricConfig& fab,
                               Word bg_iterations) const {
  expect(source < n_, "GraphBfs: source out of range");
  expect(bg_iterations == 0 || cfg_.multithreading,
         "GraphBfs: background work needs multithreading enabled");
  fab.validate();
  validate_layout(fab.chips, fab.mailbox_base);
  fabric::Fabric f(cfg_, fab);
  f.load(assemble(
      kernel_source(fab.chips, fab.mailbox_base, bg_iterations > 0)));
  std::vector<const Machine*> machines;
  for (std::uint32_t k = 0; k < fab.chips; ++k) {
    bind_chip(f.chip(k).state(), k, fab.chips, source, bg_iterations);
    machines.push_back(&f.chip(k));
  }
  expect(f.run(kBfsMaxCycles), "GraphBfs: fabric kernel timed out");
  Result res = collect(fab.chips, machines);
  res.fleet = f.fleet_stats();
  res.cycles = res.fleet.cycles;
  res.fabric = f.stats();
  res.used_fabric = true;
  return res;
}

std::vector<Word> GraphBfs::host_reference(std::uint32_t num_vertices,
                                           const std::vector<GraphEdge>& edges,
                                           bool directed,
                                           std::uint32_t source) {
  std::vector<std::vector<std::uint32_t>> adj(num_vertices);
  for (const GraphEdge& e : edges) {
    adj[e.u].push_back(e.v);
    if (!directed) adj[e.v].push_back(e.u);
  }
  std::vector<Word> level(num_vertices, 0);
  std::queue<std::uint32_t> q;
  level[source] = 1;
  q.push(source);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (const std::uint32_t v : adj[u]) {
      if (level[v] == 0) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

}  // namespace masc::asc
