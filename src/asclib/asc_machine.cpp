#include "asclib/asc_machine.hpp"

#include "assembler/assembler.hpp"

namespace masc::asc {

AscMachine::AscMachine(const MachineConfig& cfg) : machine_(cfg) {}

void AscMachine::load_source(const std::string& asm_source) {
  machine_.load(assemble(asm_source));
}

void AscMachine::bind_local_column(Addr addr, std::span<const Word> values) {
  expect(values.size() <= num_pes(), "bind_local_column: more values than PEs");
  auto& st = machine_.state();
  for (PEIndex pe = 0; pe < values.size(); ++pe)
    st.set_local_mem(pe, addr, values[pe]);
}

std::uint32_t AscMachine::bind_strided(Addr base, std::span<const Word> values) {
  auto& st = machine_.state();
  const std::uint32_t p = num_pes();
  for (std::size_t i = 0; i < values.size(); ++i)
    st.set_local_mem(static_cast<PEIndex>(i % p),
                     base + static_cast<Addr>(i / p), values[i]);
  return slots_for(values.size(), p);
}

void AscMachine::bind_strided_validity(Addr base, std::size_t count) {
  auto& st = machine_.state();
  const std::uint32_t p = num_pes();
  const std::uint32_t slots = slots_for(count, p);
  for (std::uint32_t s = 0; s < slots; ++s)
    for (PEIndex pe = 0; pe < p; ++pe)
      st.set_local_mem(pe, base + s,
                       (static_cast<std::size_t>(s) * p + pe) < count ? 1 : 0);
}

void AscMachine::bind_scalar_mem(Addr base, std::span<const Word> values) {
  auto& st = machine_.state();
  for (std::size_t i = 0; i < values.size(); ++i)
    st.set_scalar_mem(base + static_cast<Addr>(i), values[i]);
}

void AscMachine::set_arg(RegNum reg, Word value) {
  machine_.state().set_sreg(0, reg, value);
}

RunOutcome AscMachine::run(Cycle max_cycles) {
  RunOutcome out;
  out.finished = machine_.run(max_cycles);
  out.cycles = machine_.stats().cycles;
  out.stats = machine_.stats();
  return out;
}

Word AscMachine::result(RegNum reg) const { return machine_.state().sreg(0, reg); }

Word AscMachine::mem(Addr addr) const { return machine_.state().scalar_mem(addr); }

std::vector<Word> AscMachine::read_local_column(Addr addr) const {
  return machine_.state().read_local_column(addr);
}

std::vector<Word> AscMachine::read_strided(Addr base, std::size_t count) const {
  std::vector<Word> out(count);
  const std::uint32_t p = num_pes();
  const auto& st = machine_.state();
  for (std::size_t i = 0; i < count; ++i)
    out[i] = st.local_mem(static_cast<PEIndex>(i % p),
                          base + static_cast<Addr>(i / p));
  return out;
}

}  // namespace masc::asc
