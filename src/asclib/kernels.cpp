#include "asclib/kernels.hpp"

namespace masc::asc {

std::string KernelBuilder::begin_slot_loop(std::uint32_t slots,
                                           const std::string& ctr_reg,
                                           const std::string& limit_reg,
                                           const std::string& addr_preg) {
  const std::string lbl = fresh("slot_loop");
  line("li " + ctr_reg + ", 0");
  line("li " + limit_reg + ", " + std::to_string(slots));
  label(lbl);
  line("pbcast " + addr_preg + ", " + ctr_reg);
  return lbl;
}

void KernelBuilder::end_slot_loop(const std::string& loop_label,
                                  const std::string& ctr_reg,
                                  const std::string& limit_reg) {
  line("addi " + ctr_reg + ", " + ctr_reg + ", 1");
  line("bne " + ctr_reg + ", " + limit_reg + ", " + loop_label);
}

KernelBuilder& KernelBuilder::flag_to_word(const std::string& dst_preg,
                                           const std::string& flag) {
  line("pmovi " + dst_preg + ", 0");
  line("pmovi " + dst_preg + ", 1 ?" + flag);
  return *this;
}

KernelBuilder& KernelBuilder::first_responder_index(
    const std::string& dst_reg, const std::string& flag,
    const std::string& scratch_flag) {
  line("rsel " + scratch_flag + ", " + flag);
  // With a one-hot mask, an unsigned max-reduction of the PE index vector
  // extracts the selected PE's index.
  line("rmaxu " + dst_reg + ", p6 ?" + scratch_flag);
  return *this;
}

}  // namespace masc::asc
