// Assembly kernel builder: small composable emitter used by the asclib
// algorithms to generate MASC assembly, plus canned snippets for the
// recurring ASC idioms (slot loops over strided data, responder
// position extraction, flag materialization).
//
// Register conventions used by all asclib kernels:
//   r1..r5   kernel-internal temporaries
//   r8..r12  host-bound arguments (set_arg before run)
//   r13..r15 results (read with result() after run)
//   p1..p5   kernel-internal parallel temporaries
//   p6       PE index (set by standard_prologue)
//   pf1..pf5 kernel-internal flags
#pragma once

#include <sstream>
#include <string>

#include "common/types.hpp"

namespace masc::asc {

/// Argument/result register conventions.
inline constexpr RegNum kArg0 = 8, kArg1 = 9, kArg2 = 10, kArg3 = 11;
inline constexpr RegNum kRes0 = 13, kRes1 = 14, kRes2 = 15;

class KernelBuilder {
 public:
  /// Append one instruction/directive line.
  KernelBuilder& line(const std::string& text) {
    os_ << "    " << text << '\n';
    return *this;
  }

  /// Define a label at the current position.
  KernelBuilder& label(const std::string& name) {
    os_ << name << ":\n";
    return *this;
  }

  /// A fresh unique label with the given stem.
  std::string fresh(const std::string& stem) {
    return stem + "_" + std::to_string(counter_++);
  }

  KernelBuilder& comment(const std::string& text) {
    os_ << "    # " << text << '\n';
    return *this;
  }

  /// pindex p6 — every kernel wants the PE index vector.
  KernelBuilder& standard_prologue() {
    comment("prologue: PE index in p6");
    return line("pindex p6");
  }

  /// Open a loop running `slots` iterations with the counter in `ctr_reg`
  /// and the broadcast slot address in `addr_preg`. Returns the label to
  /// pass to end_slot_loop.
  std::string begin_slot_loop(std::uint32_t slots, const std::string& ctr_reg,
                              const std::string& limit_reg,
                              const std::string& addr_preg);
  void end_slot_loop(const std::string& loop_label, const std::string& ctr_reg,
                     const std::string& limit_reg);

  /// Materialize a parallel flag as a 0/1 word into `dst_preg`.
  KernelBuilder& flag_to_word(const std::string& dst_preg,
                              const std::string& flag);

  /// r<dst> <- PE index of the first responder in `flag` (requires p6).
  KernelBuilder& first_responder_index(const std::string& dst_reg,
                                       const std::string& flag,
                                       const std::string& scratch_flag);

  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
  int counter_ = 0;
};

}  // namespace masc::asc
