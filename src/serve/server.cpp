#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

namespace masc::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string error_json(const std::string& code, const std::string& detail,
                       const std::string& extra = "") {
  std::ostringstream os;
  os << "{\"ok\":false,\"error\":\"" << json_escape(code) << "\"";
  if (!detail.empty()) os << ",\"detail\":\"" << json_escape(detail) << "\"";
  if (!extra.empty()) os << "," << extra;
  os << "}";
  return os.str();
}

std::uint64_t require_id(const json::Value& req) {
  const json::Value* id = req.find("id");
  if (!id) throw JsonError("missing \"id\"");
  return id->as_uint();
}

const char* to_string(bool b) { return b ? "true" : "false"; }

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts),
      runner_(opts.workers),
      queue_(opts.queue_capacity) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) throw ServeError("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw ServeError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError("bind/listen 127.0.0.1:" + std::to_string(opts_.port) +
                     ": " + what);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // Serialize the flag flip with result-waiters' predicate checks: a
  // waiter that saw stopping_ == false is now inside wait_for and will
  // receive this notify; one that hasn't locked yet will see true.
  { const std::lock_guard<std::mutex> lock(jobs_mu_); }
  jobs_cv_.notify_all();

  // 1. No new connections: unblock accept() and join the acceptor, so
  //    the session list is frozen from here on.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain the pipeline: cancel everything not yet done, close the
  //    queue (pop_batch returns the remnants, whose cancel tokens are
  //    already set, so the dispatcher discharges them as cancelled
  //    within one sweep chunk each) and join the dispatcher.
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, rec] : jobs_)
      if (rec.state != JobState::kDone && rec.job.cancel)
        rec.job.cancel->store(true, std::memory_order_relaxed);
  }
  queue_.close();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // 3. Hang up on every session and join the session threads.
  {
    const std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_)
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
  }
  for (auto& s : sessions_)
    if (s->thread.joinable()) s->thread.join();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  jobs_cv_.notify_all();
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal) — stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    {
      const std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

void Server::session_loop(Session* s) {
  std::string payload;
  try {
    while (read_frame(s->fd, payload))
      write_frame(s->fd, handle_request(payload));
  } catch (const std::exception&) {
    // Framing or socket failure: this session is beyond repair; the
    // job store is untouched, so the client can reconnect and resume.
  }
  const std::lock_guard<std::mutex> lock(sessions_mu_);
  ::close(s->fd);
  s->fd = -1;
}

std::string Server::handle_request(const std::string& payload) {
  try {
    const json::Value req = parse_json(payload);
    const std::string op = req.get_string("op", "");
    if (op == "ping") return "{\"ok\":true,\"type\":\"pong\"}";
    if (op == "submit") return handle_submit(req);
    if (op == "status") return handle_status(req);
    if (op == "result") return handle_result(req);
    if (op == "cancel") return handle_cancel(req);
    if (op == "stats")
      return "{\"ok\":true,\"type\":\"stats\",\"stats\":" + stats_json() + "}";
    if (op == "shutdown") {
      shutdown_requested_.store(true, std::memory_order_release);
      return "{\"ok\":true,\"type\":\"shutdown\"}";
    }
    return error_json("unknown_op", "unrecognized \"op\" \"" + op + "\"");
  } catch (const std::exception& e) {
    // JsonError, ConfigError, AssemblyError, CompileError, ...: the
    // request was understood to be ill-formed, the connection is fine.
    return error_json("bad_request", e.what());
  }
}

std::string Server::handle_submit(const json::Value& req) {
  const json::Value* jobs_v = req.find("jobs");
  if (!jobs_v || !jobs_v->is_array() || jobs_v->as_array().empty())
    throw JsonError("submit needs a non-empty \"jobs\" array");
  const std::uint64_t request_deadline_ms =
      req.get_uint("deadline_ms", opts_.default_deadline_ms);

  // Compile/validate every job before admitting any: a submit either
  // enters the queue whole or not at all.
  const auto now = Clock::now();
  std::vector<SweepJob> parsed;
  parsed.reserve(jobs_v->as_array().size());
  for (const auto& elem : jobs_v->as_array()) {
    SweepJob job = job_from_json(elem);
    job.max_cycles = std::min(job.max_cycles, opts_.max_cycles_cap);
    job.cancel = make_cancel_token();
    const std::uint64_t deadline_ms =
        elem.is_object() ? elem.get_uint("deadline_ms", request_deadline_ms)
                         : request_deadline_ms;
    if (deadline_ms > 0)
      job.deadline = now + std::chrono::milliseconds(deadline_ms);
    parsed.push_back(std::move(job));
  }

  if (stopping_.load()) return error_json("shutting_down", "server stopping");

  std::vector<std::uint64_t> ids;
  ids.reserve(parsed.size());
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& job : parsed) {
      const std::uint64_t id = next_id_.fetch_add(1);
      JobRecord rec;
      rec.id = id;
      rec.job = std::move(job);
      jobs_.emplace(id, std::move(rec));
      ids.push_back(id);
    }
  }
  if (!queue_.try_push(ids)) {
    {
      const std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const std::uint64_t id : ids) jobs_.erase(id);
    }
    metrics_.on_rejected(ids.size());
    // Retry-after hint: how long until this many slots should free up,
    // from the measured mean job time and the current backlog.
    std::size_t backlog = queue_.size();
    {
      const std::lock_guard<std::mutex> lock(jobs_mu_);
      backlog += running_;
    }
    const double mean_s = metrics_.mean_job_seconds(0.05);
    double ms = mean_s * static_cast<double>(backlog) /
                static_cast<double>(runner_.workers()) * 1e3;
    ms = std::clamp(ms, 10.0, 30'000.0);
    return error_json("queue_full",
                      "queue has no room for " + std::to_string(ids.size()) +
                          " job(s)",
                      "\"retry_after_ms\":" +
                          std::to_string(static_cast<std::uint64_t>(ms)));
  }
  metrics_.on_accepted(ids.size());

  std::ostringstream os;
  os << "{\"ok\":true,\"type\":\"submitted\",\"ids\":[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) os << ",";
    os << ids[i];
  }
  os << "]}";
  return os.str();
}

std::string Server::handle_status(const json::Value& req) {
  const std::uint64_t id = require_id(req);
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_json("not_found", "no job " + std::to_string(id));
  const JobRecord& rec = it->second;
  std::ostringstream os;
  os << "{\"ok\":true,\"type\":\"status\",\"id\":" << id << ",\"state\":\"";
  switch (rec.state) {
    case JobState::kQueued: os << "queued"; break;
    case JobState::kRunning: os << "running"; break;
    case JobState::kDone: os << "done"; break;
  }
  os << "\"";
  if (rec.state == JobState::kDone) {
    os << ",\"status\":\"" << masc::to_string(rec.result.status) << "\"";
    if (!rec.result.error.empty())
      os << ",\"error\":\"" << json_escape(rec.result.error) << "\"";
  }
  os << "}";
  return os.str();
}

std::string Server::handle_result(const json::Value& req) {
  const std::uint64_t id = require_id(req);
  const bool wait = req.get_bool("wait", false);
  const bool release = req.get_bool("release", false);
  const auto timeout =
      std::chrono::milliseconds(req.get_uint("timeout_ms", 60'000));

  std::unique_lock<std::mutex> lock(jobs_mu_);
  auto done_or_gone = [&] {
    const auto it = jobs_.find(id);
    return stopping_.load() || it == jobs_.end() ||
           it->second.state == JobState::kDone;
  };
  if (wait && !done_or_gone()) jobs_cv_.wait_for(lock, timeout, done_or_gone);

  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_json("not_found", "no job " + std::to_string(id));
  JobRecord& rec = it->second;
  if (rec.state != JobState::kDone) {
    if (stopping_.load())
      return error_json("shutting_down", "server stopping");
    const char* state = rec.state == JobState::kQueued ? "queued" : "running";
    return error_json("not_ready",
                      "job " + std::to_string(id) + " is " + state,
                      "\"id\":" + std::to_string(id) + ",\"state\":\"" +
                          state + "\"");
  }
  std::string response = "{\"ok\":true,\"type\":\"result\",\"id\":" +
                         std::to_string(id) +
                         ",\"result\":" + to_json(rec.result, rec.job.cfg) +
                         "}";
  if (release) jobs_.erase(it);
  return response;
}

std::string Server::handle_cancel(const json::Value& req) {
  const std::uint64_t id = require_id(req);
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_json("not_found", "no job " + std::to_string(id));
  JobRecord& rec = it->second;
  const bool effective = rec.state != JobState::kDone;
  if (effective) rec.job.cancel->store(true, std::memory_order_relaxed);
  std::ostringstream os;
  os << "{\"ok\":true,\"type\":\"cancel\",\"id\":" << id
     << ",\"effective\":" << to_string(effective) << "}";
  return os.str();
}

void Server::dispatch_loop() {
  for (;;) {
    // Coalesce everything currently queued (up to batch_max) into one
    // sweep dispatch: one thread-pool spin-up amortized over the batch.
    const std::vector<std::uint64_t> ids = queue_.pop_batch(opts_.batch_max);
    if (ids.empty()) return;  // queue closed and drained

    std::vector<SweepJob> batch;
    batch.reserve(ids.size());
    {
      const std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const std::uint64_t id : ids) {
        JobRecord& rec = jobs_.at(id);
        rec.state = JobState::kRunning;
        ++running_;
        batch.push_back(rec.job);
        // The program image is the bulk of a record's footprint and the
        // worker's copy is the one that runs; keep cfg for the result.
        rec.job.program = Program{};
      }
    }
    metrics_.on_batch(ids.size());

    runner_.run(batch, [&](const SweepResult& r) {
      const std::uint64_t id = ids[r.index];
      {
        const std::lock_guard<std::mutex> lock(jobs_mu_);
        JobRecord& rec = jobs_.at(id);
        rec.result = r;
        rec.result.index = static_cast<std::size_t>(id);  // batch-local → id
        rec.state = JobState::kDone;
        --running_;
      }
      metrics_.on_done(r);
      jobs_cv_.notify_all();
    });
  }
}

std::string Server::stats_json() const {
  const std::size_t depth = queue_.size();
  std::size_t running;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    running = running_;
  }
  return metrics_.to_json(depth, running, opts_.queue_capacity);
}

}  // namespace masc::serve
