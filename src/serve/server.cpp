#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/base64.hpp"
#include "fault/fault.hpp"
#include "serve/framing.hpp"

namespace masc::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string error_json(const std::string& code, const std::string& detail,
                       const std::string& extra = "") {
  std::ostringstream os;
  os << "{\"ok\":false,\"error\":\"" << json_escape(code) << "\"";
  if (!detail.empty()) os << ",\"detail\":\"" << json_escape(detail) << "\"";
  if (!extra.empty()) os << "," << extra;
  os << "}";
  return os.str();
}

std::uint64_t require_id(const json::Value& req) {
  const json::Value* id = req.find("id");
  if (!id) throw JsonError("missing \"id\"");
  return id->as_uint();
}

const char* to_string(bool b) { return b ? "true" : "false"; }

std::string submitted_json(const std::vector<std::uint64_t>& ids,
                           bool duplicate) {
  std::ostringstream os;
  os << "{\"ok\":true,\"type\":\"submitted\",\"ids\":[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) os << ",";
    os << ids[i];
  }
  os << "],\"duplicate\":" << to_string(duplicate) << "}";
  return os.str();
}

/// Inverse of masc::to_string(SweepStatus), for journal replay.
SweepStatus status_from_string(const std::string& s) {
  if (s == "finished") return SweepStatus::kFinished;
  if (s == "cycle-limit") return SweepStatus::kCycleLimit;
  if (s == "cancelled") return SweepStatus::kCancelled;
  if (s == "deadline-exceeded") return SweepStatus::kDeadlineExceeded;
  return SweepStatus::kError;
}

std::string ckpt_record(std::uint64_t id, const std::string& blob) {
  return "{\"rec\":\"ckpt\",\"id\":" + std::to_string(id) + ",\"state\":\"" +
         base64_encode(blob) + "\"}";
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts),
      runner_(opts.workers),
      queue_(opts.queue_capacity) {
  // Jobs that do not carry their own "batch_lanes" inherit the server
  // default inside the runner (docs/PERF.md "Lane batching").
  runner_.set_batch_lanes(opts_.batch_lanes);
  // A disk tier without a RAM tier in front makes no sense (every hit
  // would pay a decode); --cache-dir alone turns the cache on.
  if (opts_.cache_bytes == 0 && !opts_.cache_dir.empty())
    opts_.cache_bytes = 64u << 20;
  if (opts_.cache_bytes > 0) {
    cache_ = std::make_shared<SweepResultCache>(opts_.cache_bytes,
                                                opts_.cache_shards);
    if (!opts_.cache_dir.empty()) {
      // Crash-durable L2 (docs/CACHE.md). Any open failure — bad path,
      // another process holding the lock, unreadable segments — leaves
      // a working RAM-only cache behind a counter, never a dead server.
      CacheStoreOptions store_opts;
      store_opts.dir = opts_.cache_dir;
      store_opts.capacity_bytes = opts_.cache_disk_bytes;
      store_opts.segment_bytes = opts_.cache_segment_bytes;
      try {
        auto store = std::make_unique<CacheStore>(store_opts);
        store->open();
        cache_->attach_disk(std::move(store));
      } catch (const CacheStoreError&) {
        cache_->note_disk_open_failure();
      }
    }
    // The runner consults the same cache on dispatch, so queued repeats
    // and intra-batch duplicates are answered from memory too.
    runner_.set_cache(cache_);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) throw ServeError("server already started");

  // Recovery: replay the journal before anything can connect. Completed
  // jobs come back servable, unfinished ones come back queued (with
  // their last checkpoint attached when one was recorded) and are
  // re-enqueued below, past capacity if need be.
  std::vector<std::uint64_t> recovered;
  if (!opts_.journal_path.empty()) {
    for (const std::string& rec : Journal::replay(opts_.journal_path))
      apply_journal_record(rec);
    journal_.open(opts_.journal_path);
    for (const auto& [id, rec] : jobs_)
      if (rec.state == JobState::kQueued) recovered.push_back(id);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw ServeError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError("bind/listen 127.0.0.1:" + std::to_string(opts_.port) +
                     ": " + what);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  // Event loops before the acceptor: a connection accepted first must
  // have a loop to land on.
  net::LoopConfig loop_cfg;
  loop_cfg.idle_timeout_ms = opts_.idle_timeout_ms;
  loop_cfg.io_timeout_ms = opts_.io_timeout_ms;
  loop_cfg.max_frame_bytes = kMaxFrameBytes;
  loop_cfg.on_frame = [this](net::Conn& c, std::string&& payload) {
    on_frame(c, std::move(payload));
  };
  loop_cfg.on_close = [this](net::Conn& c) { on_conn_close(c); };
  loops_ = std::make_unique<net::LoopGroup>(
      opts_.io_threads ? opts_.io_threads : 1, loop_cfg);
  loops_->start();

  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });

  if (!recovered.empty()) {
    metrics_.on_accepted(recovered.size());
    queue_.push_recovered(recovered);
  }
}

void Server::stop() { shutdown_impl(/*park_interrupted=*/false); }

void Server::drain() { shutdown_impl(/*park_interrupted=*/true); }

void Server::shutdown_impl(bool park_interrupted) {
  if (!started_.load()) return;
  // Set *before* claiming stopping_, so the dispatcher's completion
  // callback can never see stopping_ without the drain flag.
  if (park_interrupted && journal_.is_open()) draining_.store(true);
  if (stopping_.exchange(true)) return;
  // Serialize the flag flip with result-waiters' predicate checks: a
  // waiter that saw stopping_ == false is now inside wait_for and will
  // receive this notify; one that hasn't locked yet will see true.
  { const std::lock_guard<std::mutex> lock(jobs_mu_); }
  jobs_cv_.notify_all();

  // 1. No new connections: unblock accept() and join the acceptor, so
  //    the session list is frozen from here on.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain the pipeline: cancel everything not yet done, close the
  //    queue (pop_batch returns the remnants, whose cancel tokens are
  //    already set, so the dispatcher discharges them as cancelled
  //    within one sweep chunk each) and join the dispatcher.
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, rec] : jobs_)
      if (rec.state != JobState::kDone && rec.job.cancel)
        rec.job.cancel->store(true, std::memory_order_relaxed);
  }
  queue_.close();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // 3. Flush every parked result-wait with a shutting_down response
  //    (the loops are still running, so the posts get delivered during
  //    loop teardown at the latest), then stop the loops: each conn
  //    gets on_close exactly once and the loop threads join.
  wake_all_waiters();
  if (loops_) loops_->stop();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  journal_.close();
  jobs_cv_.notify_all();
}

void Server::apply_journal_record(const std::string& payload) {
  try {
    const json::Value rec = parse_json(payload);
    const std::string kind = rec.get_string("rec", "");
    if (kind == "submit") {
      const json::Value* ids_v = rec.find("ids");
      const json::Value* jobs_v = rec.find("jobs");
      if (!ids_v || !jobs_v) return;
      const json::Value* deadlines = rec.find("deadlines");
      const std::string key = rec.get_string("key", "");
      const auto now = Clock::now();
      std::vector<std::uint64_t> ids;
      const std::size_t n =
          std::min(ids_v->as_array().size(), jobs_v->as_array().size());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t id = ids_v->as_array()[i].as_uint();
        SweepJob job = job_from_json(jobs_v->as_array()[i]);
        job.max_cycles = std::min(job.max_cycles, opts_.max_cycles_cap);
        if (opts_.sim_threads > 1 && job.cfg.sim_threads <= 1)
          job.cfg.sim_threads = opts_.sim_threads;
        job.cancel = make_cancel_token();
        job.checkpoint_on_stop = true;
        // The deadline *budget* restarts on recovery: wall time spent
        // before the crash is not charged to the job.
        const std::uint64_t deadline_ms =
            deadlines && i < deadlines->as_array().size()
                ? deadlines->as_array()[i].as_uint()
                : 0;
        if (deadline_ms > 0)
          job.deadline = now + std::chrono::milliseconds(deadline_ms);
        JobRecord r;
        r.id = id;
        r.job = std::move(job);
        jobs_.insert_or_assign(id, std::move(r));
        ids.push_back(id);
        std::uint64_t next = next_id_.load();
        if (id >= next) next_id_.store(id + 1);
      }
      if (!key.empty() && !ids.empty()) jobs_by_key_[key] = std::move(ids);
    } else if (kind == "done") {
      const auto it = jobs_.find(rec.get_uint("id", 0));
      const json::Value* result = rec.find("result");
      if (it == jobs_.end() || !result) return;
      JobRecord& r = it->second;
      r.state = JobState::kDone;
      r.result_json = json::serialize(*result);
      r.result.index = static_cast<std::size_t>(r.id);
      r.result.status = status_from_string(result->get_string("status", ""));
      r.result.finished = r.result.status == SweepStatus::kFinished;
      r.result.error = result->get_string("error", "");
    } else if (kind == "ckpt") {
      const auto it = jobs_.find(rec.get_uint("id", 0));
      const json::Value* state = rec.find("state");
      if (it == jobs_.end() || !state) return;
      it->second.job.initial_state =
          std::make_shared<const std::string>(base64_decode(state->as_string()));
    } else if (kind == "extend") {
      const auto it = jobs_.find(rec.get_uint("id", 0));
      if (it == jobs_.end()) return;
      JobRecord& r = it->second;
      r.state = JobState::kQueued;
      r.user_cancelled = false;
      r.result_json.clear();
      r.job.cancel = make_cancel_token();
      const std::uint64_t deadline_ms = rec.get_uint("deadline_ms", 0);
      r.job.deadline =
          deadline_ms > 0
              ? std::optional<Clock::time_point>(
                    Clock::now() + std::chrono::milliseconds(deadline_ms))
              : std::nullopt;
      if (const json::Value* state = rec.find("state"))
        r.job.initial_state = std::make_shared<const std::string>(
            base64_decode(state->as_string()));
    } else if (kind == "release") {
      jobs_.erase(rec.get_uint("id", 0));
    }
  } catch (const std::exception&) {
    // A record the crash corrupted (or a schema from a future version):
    // skipping it is always safe — at worst a job reruns from scratch.
  }
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal) — stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    loops_->next().adopt(fd);
  }
}

Server::ConnState& Server::conn_state(net::Conn& c) {
  if (!c.ctx) c.ctx = std::make_shared<ConnState>();
  return *static_cast<ConnState*>(c.ctx.get());
}

void Server::send_v1(net::Conn& c, std::uint64_t slot, std::string&& resp) {
  ConnState& st = conn_state(c);
  for (auto& [s, r] : st.v1_q)
    if (s == slot) {
      r = std::move(resp);
      break;
    }
  // v1 responses leave strictly in request order: a parked result-wait
  // holds later (already computed) responses back until it resolves.
  while (!st.v1_q.empty() && st.v1_q.front().second) {
    c.send_frame(*st.v1_q.front().second);
    st.v1_q.pop_front();
    if (c.closing()) return;
  }
}

void Server::on_frame(net::Conn& c, std::string&& payload) {
  if (v2::is_v2(payload)) {
    handle_v2_frame(c, payload);
    return;
  }
  ConnState& st = conn_state(c);
  const std::uint64_t slot = st.next_slot++;
  st.v1_q.emplace_back(slot, std::nullopt);
  WaitTarget wt;
  wt.loop = &c.loop();
  wt.conn_id = c.id();
  wt.v1_slot = slot;
  wt.request = payload;
  std::optional<std::string> resp;
  try {
    resp = handle_request(payload, &wt);
  } catch (const ServeError&) {
    // Transport failure (or an injected frame fault) mid-handling: the
    // stream may be desynced, so drop the connection rather than write
    // a "response" the client can't attribute.
    c.close();
    return;
  }
  if (resp) send_v1(c, slot, std::move(*resp));
}

void Server::handle_v2_frame(net::Conn& c, const std::string& payload) {
  v2::Frame f;
  try {
    f = v2::decode(payload);
  } catch (const v2::V2Error& e) {
    if (e.fatal()) {
      c.close();  // header garbage: the stream can't be trusted
      return;
    }
    const std::uint8_t op_byte =
        payload.size() > 2 ? static_cast<std::uint8_t>(payload[2]) : 0;
    c.send_frame(v2::encode(static_cast<v2::Op>(op_byte), v2::Kind::kError,
                            e.request_id(),
                            error_json(e.code(), e.what())));
    return;
  }
  if (f.kind != v2::Kind::kRequest) {
    c.send_frame(v2::encode(f.op, v2::Kind::kError, f.request_id,
                            error_json("bad_frame",
                                       "expected a request frame")));
    return;
  }
  if (f.op == v2::Op::kCacheGet) {
    // The fully binary op: 16 raw key bytes in, the encoded cache
    // record out — no JSON, no base64 (docs/NET.md "cache_get").
    try {
      const Hash128 key = v2::decode_cache_get_key(f.body, f.request_id);
      if (cache_) {
        if (const auto rec = cache_->peek_encoded(key)) {
          c.send_frame(v2::encode_cache_get_hit(f.request_id, *rec));
          return;
        }
      }
      c.send_frame(v2::encode_cache_get_miss(f.request_id));
    } catch (const v2::V2Error& e) {
      c.send_frame(v2::encode(f.op, v2::Kind::kError, e.request_id(),
                              error_json(e.code(), e.what())));
    }
    return;
  }
  // submit/result/stats carry the v1 JSON request as the body; the op
  // in the header wins over any "op" member. Responses are the exact
  // v1 response bytes inside a v2 envelope, so v2 results are
  // bit-identical to v1 by construction.
  const char* forced_op = f.op == v2::Op::kSubmit   ? "submit"
                          : f.op == v2::Op::kResult ? "result"
                                                    : "stats";
  WaitTarget wt;
  wt.loop = &c.loop();
  wt.conn_id = c.id();
  wt.v2 = true;
  wt.v2_id = f.request_id;
  wt.request = std::string(f.body);
  std::optional<std::string> resp;
  try {
    resp = handle_request(wt.request, &wt, forced_op);
  } catch (const ServeError&) {
    c.close();
    return;
  }
  if (resp)
    c.send_frame(v2::encode(f.op,
                            v2::is_error_body(*resp) ? v2::Kind::kError
                                                     : v2::Kind::kOk,
                            f.request_id, *resp));
}

void Server::on_conn_close(net::Conn& c) {
  // Orphan this conn's parked result-waits; their timers no-op later.
  const std::uint64_t conn_id = c.id();
  net::EventLoop* loop = &c.loop();
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    if (it->second.target.loop == loop && it->second.target.conn_id == conn_id)
      it = waiters_.erase(it);
    else
      ++it;
  }
}

std::optional<std::string> Server::handle_request(const std::string& payload,
                                                  const WaitTarget* wt,
                                                  const char* forced_op) {
  try {
    const json::Value req = parse_json(payload.empty() ? "{}" : payload);
    const std::string op = forced_op ? forced_op : req.get_string("op", "");
    if (op == "ping") return "{\"ok\":true,\"type\":\"pong\"}";
    if (op == "hello") {
      // Version negotiation (docs/NET.md "Negotiation"): answer with
      // the highest version both sides speak. v2 frames are accepted
      // regardless — hello is how a *client* learns it may send them.
      unsigned best = 1;
      if (const json::Value* v = req.find("versions"); v && v->is_array())
        for (const auto& e : v->as_array())
          if (e.is_number() && e.as_uint() == 2) best = 2;
      return "{\"ok\":true,\"type\":\"hello\",\"version\":" +
             std::to_string(best) + ",\"versions\":[1,2]}";
    }
    if (op == "submit") return handle_submit(req);
    if (op == "status") return handle_status(req);
    if (op == "result") return handle_result(req, wt);
    if (op == "cancel") return handle_cancel(req);
    if (op == "extend") return handle_extend(req);
    if (op == "stats")
      return "{\"ok\":true,\"type\":\"stats\",\"stats\":" + stats_json() + "}";
    if (op == "cache_get") return handle_cache_get(req);
    if (op == "cache_stats") return handle_cache_stats();
    if (op == "cache_flush") return handle_cache_flush();
    if (op == "metrics_text")
      return "{\"ok\":true,\"type\":\"metrics_text\",\"text\":\"" +
             json_escape(metrics_text()) + "\"}";
    if (op == "shutdown") {
      shutdown_requested_.store(true, std::memory_order_release);
      return "{\"ok\":true,\"type\":\"shutdown\"}";
    }
    return error_json("unknown_op", "unrecognized \"op\" \"" + op + "\"");
  } catch (const ServeError&) {
    throw;  // transport failure: the caller drops the connection
  } catch (const std::exception& e) {
    // JsonError, ConfigError, AssemblyError, CompileError, ...: the
    // request was understood to be ill-formed, the connection is fine —
    // answer with an error frame and keep serving it.
    return error_json("bad_request", e.what());
  }
}

std::string Server::handle_submit(const json::Value& req) {
  const json::Value* jobs_v = req.find("jobs");
  if (!jobs_v || !jobs_v->is_array() || jobs_v->as_array().empty())
    throw JsonError("submit needs a non-empty \"jobs\" array");
  const std::uint64_t request_deadline_ms =
      req.get_uint("deadline_ms", opts_.default_deadline_ms);
  const std::string key = req.get_string("key", "");
  const bool journaling = journal_.is_open();

  // Compile/validate every job before admitting any: a submit either
  // enters the queue whole or not at all.
  const auto now = Clock::now();
  std::vector<SweepJob> parsed;
  std::vector<std::uint64_t> deadlines;  // per job, ms; journaled
  parsed.reserve(jobs_v->as_array().size());
  for (const auto& elem : jobs_v->as_array()) {
    SweepJob job = job_from_json(elem);
    job.max_cycles = std::min(job.max_cycles, opts_.max_cycles_cap);
    // Server default for intra-job row parallelism; a job's own explicit
    // "sim_threads" wins. Never journaled or hashed — host knob only.
    if (opts_.sim_threads > 1 && job.cfg.sim_threads <= 1)
      job.cfg.sim_threads = opts_.sim_threads;
    job.cancel = make_cancel_token();
    // With a journal, an interrupted run is worth saving: ask the sweep
    // to capture a resume point whenever the job is stopped early.
    job.checkpoint_on_stop = journaling;
    const std::uint64_t deadline_ms =
        elem.is_object() ? elem.get_uint("deadline_ms", request_deadline_ms)
                         : request_deadline_ms;
    if (deadline_ms > 0)
      job.deadline = now + std::chrono::milliseconds(deadline_ms);
    deadlines.push_back(deadline_ms);
    parsed.push_back(std::move(job));
  }

  if (stopping_.load()) return error_json("shutting_down", "server stopping");

  // Cache fast path: look every job up by content hash before
  // admission. A hit is complete at submit time and never takes a queue
  // slot, so repeat traffic is served even when the queue is saturated
  // and the backlog never grows for work the server already did.
  std::vector<std::shared_ptr<const CachedSweepRun>> hits(parsed.size());
  std::vector<double> lookup_seconds(parsed.size(), 0.0);
  if (cache_) {
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      const auto t0 = Clock::now();
      hits[i] = cache_->lookup(sweep_cache_key(parsed[i]));
      lookup_seconds[i] =
          std::chrono::duration<double>(Clock::now() - t0).count();
    }
  }

  std::vector<std::uint64_t> ids;       // every job of this submit
  std::vector<std::uint64_t> miss_ids;  // the subset that must queue
  std::vector<SweepResult> hit_results;
  std::vector<std::string> done_records;
  ids.reserve(parsed.size());
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    // Idempotent resubmission: a client that crashed (or lost our
    // response) retries the same keyed submit and gets the original
    // ids back instead of duplicate jobs. Checked and reserved under
    // the same lock as id allocation, so two concurrent same-key
    // submits cannot both create jobs.
    if (!key.empty()) {
      const auto it = jobs_by_key_.find(key);
      if (it != jobs_by_key_.end()) return submitted_json(it->second, true);
    }
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      const std::uint64_t id = next_id_.fetch_add(1);
      JobRecord rec;
      rec.id = id;
      rec.job = std::move(parsed[i]);
      if (hits[i]) {
        // Completed on arrival. Journaled exactly like a dispatched
        // completion, so replay serves it without re-running anything.
        rec.state = JobState::kDone;
        rec.result = materialize_cached(*hits[i], rec.job,
                                        static_cast<std::size_t>(id),
                                        lookup_seconds[i]);
        rec.result_json = to_json(rec.result, rec.job.cfg);
        hit_results.push_back(rec.result);
        if (journaling)
          done_records.push_back("{\"rec\":\"done\",\"id\":" +
                                 std::to_string(id) +
                                 ",\"result\":" + rec.result_json + "}");
        else
          rec.job.program = Program{};  // same footprint rule as dispatch
      } else {
        miss_ids.push_back(id);
      }
      jobs_.emplace(id, std::move(rec));
      ids.push_back(id);
    }
    if (!key.empty()) jobs_by_key_[key] = ids;
  }
  if (!miss_ids.empty() && !queue_.try_push(miss_ids)) {
    {
      const std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const std::uint64_t id : ids) jobs_.erase(id);
      if (!key.empty()) jobs_by_key_.erase(key);
    }
    metrics_.on_rejected(ids.size());
    // Retry-after hint: how long until this many slots should free up,
    // from the measured mean job time and the current backlog.
    std::size_t backlog = queue_.size();
    {
      const std::lock_guard<std::mutex> lock(jobs_mu_);
      backlog += running_;
    }
    const double mean_s = metrics_.mean_job_seconds(0.05);
    double ms = mean_s * static_cast<double>(backlog) /
                static_cast<double>(runner_.workers()) * 1e3;
    ms = std::clamp(ms, 10.0, 30'000.0);
    return error_json("queue_full",
                      "queue has no room for " + std::to_string(ids.size()) +
                          " job(s)",
                      "\"retry_after_ms\":" +
                          std::to_string(static_cast<std::uint64_t>(ms)));
  }
  metrics_.on_accepted(ids.size());

  if (journaling) {
    // fsync'd before the response: once the client hears "submitted",
    // no crash can lose the work. The raw job objects are re-serialized
    // so replay can recompile them without the original connection.
    std::ostringstream js;
    js << "{\"rec\":\"submit\",\"ids\":[";
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i) js << ",";
      js << ids[i];
    }
    js << "]";
    if (!key.empty()) js << ",\"key\":\"" << json_escape(key) << "\"";
    js << ",\"deadlines\":[";
    for (std::size_t i = 0; i < deadlines.size(); ++i) {
      if (i) js << ",";
      js << deadlines[i];
    }
    js << "],\"jobs\":[";
    const auto& elems = jobs_v->as_array();
    for (std::size_t i = 0; i < elems.size(); ++i) {
      if (i) js << ",";
      js << json::serialize(elems[i]);
    }
    js << "]}";
    journal_.append(js.str(), /*sync=*/true);
    // Cache hits completed at admission: journal their done records
    // right behind the submit record, so replay serves them without
    // re-running. No fsync — losing one merely re-runs a cached job.
    for (const std::string& rec : done_records)
      journal_.append(rec, /*sync=*/false);
  }
  for (const SweepResult& r : hit_results) metrics_.on_done(r);
  if (!hit_results.empty()) jobs_cv_.notify_all();

  return submitted_json(ids, false);
}

std::string Server::handle_status(const json::Value& req) {
  const std::uint64_t id = require_id(req);
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_json("not_found", "no job " + std::to_string(id));
  const JobRecord& rec = it->second;
  std::ostringstream os;
  os << "{\"ok\":true,\"type\":\"status\",\"id\":" << id << ",\"state\":\"";
  switch (rec.state) {
    case JobState::kQueued: os << "queued"; break;
    case JobState::kRunning: os << "running"; break;
    case JobState::kDone: os << "done"; break;
  }
  os << "\"";
  if (rec.state == JobState::kDone) {
    os << ",\"status\":\"" << masc::to_string(rec.result.status) << "\"";
    if (!rec.result.error.empty())
      os << ",\"error\":\"" << json_escape(rec.result.error) << "\"";
  }
  os << "}";
  return os.str();
}

std::optional<std::string> Server::handle_result(const json::Value& req,
                                                 const WaitTarget* wt) {
  const std::uint64_t id = require_id(req);
  const bool wait = req.get_bool("wait", false);
  const bool release = req.get_bool("release", false);
  const std::uint64_t timeout_ms = req.get_uint("timeout_ms", 60'000);

  std::unique_lock<std::mutex> lock(jobs_mu_);
  // Async wait: instead of blocking the loop thread on jobs_cv_, park a
  // waiter that the dispatcher's completion callback (or release, or
  // shutdown) posts back to the owning loop. The wake re-dispatches the
  // original request with waiting disabled, so the response — including
  // release/journal side effects — is exactly what a fresh request at
  // that moment would have produced.
  if (wait && wt != nullptr && !stopping_.load()) {
    const auto wit = jobs_.find(id);
    if (wit != jobs_.end() && wit->second.state != JobState::kDone) {
      ResultWaiter w;
      w.uid = next_waiter_uid_++;
      w.job_id = id;
      w.target = *wt;
      waiters_.emplace(id, w);
      lock.unlock();
      // Timer and registration race benignly: if the job completes
      // before the timer is armed, the wake already removed the uid and
      // the timer finds nothing.
      wt->loop->add_timer(timeout_ms, [this, id, uid = w.uid] {
        expire_waiter(id, uid);
      });
      return std::nullopt;
    }
  }

  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_json("not_found", "no job " + std::to_string(id));
  JobRecord& rec = it->second;
  if (rec.state != JobState::kDone) {
    if (stopping_.load())
      return error_json("shutting_down", "server stopping");
    const char* state = rec.state == JobState::kQueued ? "queued" : "running";
    return error_json("not_ready",
                      "job " + std::to_string(id) + " is " + state,
                      "\"id\":" + std::to_string(id) + ",\"state\":\"" +
                          state + "\"");
  }
  const std::string body = !rec.result_json.empty()
                               ? rec.result_json
                               : to_json(rec.result, rec.job.cfg);
  std::string response = "{\"ok\":true,\"type\":\"result\",\"id\":" +
                         std::to_string(id) + ",\"result\":" + body + "}";
  if (release) {
    jobs_.erase(it);
    lock.unlock();
    // Journaled so replay does not resurrect a record the client
    // already consumed. Unsynced: redelivering a result is harmless.
    journal_.append("{\"rec\":\"release\",\"id\":" + std::to_string(id) + "}",
                    /*sync=*/false);
    // Anyone else parked on this id now sees "gone": answer not_found,
    // matching what their wake would find as a fresh request.
    wake_result_waiters(id);
  }
  return response;
}

void Server::wake_result_waiters(std::uint64_t job_id) {
  std::vector<ResultWaiter> woken;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto [b, e] = waiters_.equal_range(job_id);
    for (auto it = b; it != e; ++it) woken.push_back(it->second);
    waiters_.erase(b, e);
  }
  for (const ResultWaiter& w : woken)
    w.target.loop->post([this, w] { deliver_waiter(w); });
}

void Server::wake_all_waiters() {
  std::vector<ResultWaiter> woken;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    for (const auto& [id, w] : waiters_) woken.push_back(w);
    waiters_.clear();
  }
  for (const ResultWaiter& w : woken)
    w.target.loop->post([this, w] { deliver_waiter(w); });
}

void Server::deliver_waiter(const ResultWaiter& w) {
  net::Conn* c = w.target.loop->find(w.target.conn_id);
  if (c == nullptr) return;  // conn died while the wait was parked
  std::string resp;
  try {
    const json::Value req =
        parse_json(w.target.request.empty() ? "{}" : w.target.request);
    // wt == nullptr forces the synchronous path: the job is done (or
    // gone, or the wait timed out), so this resolves immediately.
    resp = *handle_result(req, nullptr);
  } catch (const std::exception& e) {
    resp = error_json("bad_request", e.what());
  }
  if (w.target.v2)
    c->send_frame(v2::encode(v2::Op::kResult,
                             v2::is_error_body(resp) ? v2::Kind::kError
                                                     : v2::Kind::kOk,
                             w.target.v2_id, resp));
  else
    send_v1(*c, w.target.v1_slot, std::move(resp));
}

void Server::expire_waiter(std::uint64_t job_id, std::uint64_t uid) {
  ResultWaiter w;
  bool found = false;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto [b, e] = waiters_.equal_range(job_id);
    for (auto it = b; it != e; ++it) {
      if (it->second.uid == uid) {
        w = it->second;
        found = true;
        waiters_.erase(it);
        break;
      }
    }
  }
  // Already woken (job completed first): the timer is a stale no-op.
  if (found) deliver_waiter(w);  // resolves to not_ready
}

std::string Server::handle_cancel(const json::Value& req) {
  const std::uint64_t id = require_id(req);
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_json("not_found", "no job " + std::to_string(id));
  JobRecord& rec = it->second;
  const bool effective = rec.state != JobState::kDone;
  if (effective) {
    rec.user_cancelled = true;  // a real cancellation, not a drain stop
    rec.job.cancel->store(true, std::memory_order_relaxed);
  }
  std::ostringstream os;
  os << "{\"ok\":true,\"type\":\"cancel\",\"id\":" << id
     << ",\"effective\":" << to_string(effective) << "}";
  return os.str();
}

std::string Server::handle_extend(const json::Value& req) {
  const std::uint64_t id = require_id(req);
  const std::uint64_t deadline_ms =
      req.get_uint("deadline_ms", opts_.default_deadline_ms);
  if (stopping_.load()) return error_json("shutting_down", "server stopping");

  bool resumed = false;
  std::string ckpt_b64;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
      return error_json("not_found", "no job " + std::to_string(id));
    JobRecord& rec = it->second;
    if (rec.state != JobState::kDone)
      return error_json("not_ready",
                        "job " + std::to_string(id) + " is still pending");
    if (rec.result.status == SweepStatus::kFinished)
      return error_json("already_finished",
                        "job " + std::to_string(id) + " ran to completion");
    if (rec.job.program.text.empty())
      return error_json("not_resumable",
                        "program image for job " + std::to_string(id) +
                            " was not retained (journaling disabled)");
    // Prefer the checkpoint from the interrupted run: the job resumes
    // at the cycle it was stopped instead of starting over. Without
    // one (it stopped before its first chunk boundary) it reruns from
    // whatever resume point it started this run with.
    if (!rec.result.checkpoint.empty()) {
      rec.job.initial_state =
          std::make_shared<const std::string>(rec.result.checkpoint);
    }
    resumed = rec.job.initial_state != nullptr;
    if (rec.job.initial_state) ckpt_b64 = base64_encode(*rec.job.initial_state);
    rec.job.cancel = make_cancel_token();
    rec.job.deadline =
        deadline_ms > 0
            ? std::optional<Clock::time_point>(
                  Clock::now() + std::chrono::milliseconds(deadline_ms))
            : std::nullopt;
    rec.state = JobState::kQueued;
    rec.user_cancelled = false;
    rec.result_json.clear();
  }
  if (!queue_.try_push({id})) {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) it->second.state = JobState::kDone;
    return error_json("queue_full", "no room to requeue job " +
                                        std::to_string(id));
  }
  if (journal_.is_open()) {
    std::string rec = "{\"rec\":\"extend\",\"id\":" + std::to_string(id) +
                      ",\"deadline_ms\":" + std::to_string(deadline_ms);
    if (!ckpt_b64.empty()) rec += ",\"state\":\"" + ckpt_b64 + "\"";
    rec += "}";
    journal_.append(rec, /*sync=*/true);
  }
  std::ostringstream os;
  os << "{\"ok\":true,\"type\":\"extend\",\"id\":" << id
     << ",\"resumed\":" << to_string(resumed) << "}";
  return os.str();
}

void Server::dispatch_loop() {
  const bool journaling = journal_.is_open();
  for (;;) {
    // Coalesce everything currently queued (up to batch_max) into one
    // sweep dispatch: one thread-pool spin-up amortized over the batch.
    const std::vector<std::uint64_t> ids = queue_.pop_batch(opts_.batch_max);
    if (ids.empty()) return;  // queue closed and drained

    // Fault-injection hook: a "failed dispatch" bounces the whole batch
    // back to the queue untouched (no record was mutated yet), exactly
    // like a dispatcher that died between pop and run. The injector's
    // fault budget guarantees this cannot livelock.
    if (auto* inj = fault::active(); inj && inj->on_dispatch()) {
      queue_.push_recovered(ids);
      continue;
    }

    std::vector<SweepJob> batch;
    batch.reserve(ids.size());
    {
      const std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const std::uint64_t id : ids) {
        JobRecord& rec = jobs_.at(id);
        rec.state = JobState::kRunning;
        ++running_;
        batch.push_back(rec.job);
        // The program image is the bulk of a record's footprint and the
        // worker's copy is the one that runs; keep cfg for the result.
        // With a journal the image is retained so {"op":"extend"} can
        // re-dispatch the job without re-parsing the journal.
        if (!journaling) rec.job.program = Program{};
      }
    }
    if (journaling && opts_.checkpoint_every_chunks > 0) {
      // Periodic resume points: bound how much simulation a SIGKILL can
      // cost. Unsynced appends — a torn checkpoint is truncated away on
      // replay and the job simply resumes from the previous one.
      auto batch_ids = std::make_shared<std::vector<std::uint64_t>>(ids);
      auto sink = std::make_shared<
          const std::function<void(std::size_t, const std::string&)>>(
          [this, batch_ids](std::size_t index, const std::string& blob) {
            journal_.append(ckpt_record((*batch_ids)[index], blob),
                            /*sync=*/false);
          });
      for (SweepJob& job : batch) {
        job.checkpoint_every_chunks = opts_.checkpoint_every_chunks;
        job.checkpoint_sink = sink;
      }
    }
    metrics_.on_batch(ids.size());

    runner_.run(batch, [&](const SweepResult& r) {
      const std::uint64_t id = ids[r.index];
      std::string done_rec, ckpt_rec;
      bool completed = false;
      {
        const std::lock_guard<std::mutex> lock(jobs_mu_);
        JobRecord& rec = jobs_.at(id);
        rec.result = r;
        rec.result.index = static_cast<std::size_t>(id);  // batch-local → id
        // A job cancelled by drain() (not by the user) is *parked*, not
        // completed: its submit record stays outstanding in the journal
        // — with a fresh checkpoint when it got far enough to have one —
        // and the restarted server resumes it.
        const bool parked = draining_.load() && !rec.user_cancelled &&
                            r.status == SweepStatus::kCancelled;
        if (parked) {
          if (journaling && !r.checkpoint.empty())
            ckpt_rec = ckpt_record(id, r.checkpoint);
          rec.state = JobState::kQueued;
        } else {
          rec.state = JobState::kDone;
          rec.result_json = to_json(rec.result, rec.job.cfg);
          if (journaling)
            done_rec = "{\"rec\":\"done\",\"id\":" + std::to_string(id) +
                       ",\"result\":" + rec.result_json + "}";
          completed = true;
        }
        --running_;
      }
      if (!ckpt_rec.empty()) journal_.append(ckpt_rec, /*sync=*/false);
      if (!done_rec.empty()) journal_.append(done_rec, /*sync=*/true);
      metrics_.on_done(r);
      jobs_cv_.notify_all();
      // Job-completion post back to the owning loop(s): every parked
      // result-wait for this id resolves now. Parked (drain) jobs stay
      // un-woken — their waiters ride out the timeout, like v1's
      // predicate never turning true.
      if (completed) wake_result_waiters(id);
    });
  }
}

std::string Server::handle_cache_get(const json::Value& req) {
  // Peer read-through (docs/CACHE.md tier L3): the router asks this
  // backend — the ring owner for the key — before letting another
  // backend simulate. Served entirely at the session layer (L1 peek or
  // one disk pread), never through the queue, so it stays fast even
  // when the dispatcher is saturated.
  const std::string key_hex = req.get_string("key", "");
  Hash128 key;
  if (!hash128_from_hex(key_hex, key))
    return error_json("bad_request",
                      "cache_get needs a 32-hex-digit \"key\"");
  if (!cache_) return "{\"ok\":true,\"type\":\"cache_get\",\"found\":false}";
  const auto payload = cache_->peek_encoded(key);
  if (!payload)
    return "{\"ok\":true,\"type\":\"cache_get\",\"found\":false}";
  return "{\"ok\":true,\"type\":\"cache_get\",\"found\":true,\"payload\":\"" +
         base64_encode(*payload) + "\"}";
}

std::string Server::handle_cache_stats() {
  std::string cache_json = "{\"enabled\":false}";
  if (cache_)
    cache_json =
        "{\"enabled\":true," + masc::to_json(cache_->stats()).substr(1);
  return "{\"ok\":true,\"type\":\"cache_stats\",\"cache\":" + cache_json + "}";
}

std::string Server::handle_cache_flush() {
  // Operability: force L1 -> L2 demotion + fsync (incident response:
  // make the RAM tier durable *now*, before a risky restart).
  if (!cache_)
    return error_json("no_cache", "result cache disabled on this server");
  const std::size_t demoted = cache_->flush_to_disk();
  return "{\"ok\":true,\"type\":\"cache_flush\",\"disk\":" +
         std::string(cache_->disk_attached() ? "true" : "false") +
         ",\"demoted\":" + std::to_string(demoted) + "}";
}

std::string Server::stats_json() const {
  const std::size_t depth = queue_.size();
  std::size_t running;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    running = running_;
  }
  const SweepBatchStats bs = runner_.batch_stats();
  if (!cache_)
    return metrics_.to_json(depth, running, opts_.queue_capacity, nullptr, &bs);
  const TieredCacheStats cs = cache_->stats();
  return metrics_.to_json(depth, running, opts_.queue_capacity, &cs, &bs);
}

std::string Server::metrics_text() const {
  const std::size_t depth = queue_.size();
  std::size_t running;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    running = running_;
  }
  const SweepBatchStats bs = runner_.batch_stats();
  if (!cache_)
    return metrics_.to_prometheus(depth, running, opts_.queue_capacity, nullptr,
                                  &bs);
  const TieredCacheStats cs = cache_->stats();
  return metrics_.to_prometheus(depth, running, opts_.queue_capacity, &cs, &bs);
}

}  // namespace masc::serve
