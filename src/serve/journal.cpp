#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/protocol.hpp"

namespace masc::serve {

Journal::~Journal() { close(); }

void Journal::open(const std::string& path) {
  close();
  const std::lock_guard<std::mutex> lock(mu_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0)
    throw ServeError("journal open " + path + ": " + std::strerror(errno));
  path_ = path;
}

void Journal::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::append(const std::string& payload, bool sync) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  // One buffer, one write loop: fewer partial-record shapes a crash can
  // leave behind (replay handles them all regardless).
  std::string rec;
  rec.reserve(payload.size() + 4);
  const std::size_t len = payload.size();
  rec += static_cast<char>((len >> 24) & 0xFF);
  rec += static_cast<char>((len >> 16) & 0xFF);
  rec += static_cast<char>((len >> 8) & 0xFF);
  rec += static_cast<char>(len & 0xFF);
  rec += payload;
  std::size_t written = 0;
  while (written < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + written, rec.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ServeError("journal write: " + std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
  if (sync && ::fsync(fd_) < 0)
    throw ServeError("journal fsync: " + std::string(std::strerror(errno)));
}

std::vector<std::string> Journal::replay(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return {};
    throw ServeError("journal open " + path + ": " + std::strerror(errno));
  }

  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string what = std::strerror(errno);
      ::close(fd);
      throw ServeError("journal read " + path + ": " + what);
    }
    data.append(buf, static_cast<std::size_t>(n));
  }

  std::vector<std::string> records;
  std::size_t pos = 0;
  while (data.size() - pos >= 4) {
    const auto b = [&](std::size_t i) {
      return static_cast<std::size_t>(static_cast<unsigned char>(data[pos + i]));
    };
    const std::size_t len = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
    if (data.size() - pos - 4 < len) break;  // torn tail: partial payload
    records.emplace_back(data, pos + 4, len);
    pos += 4 + len;
  }
  if (pos < data.size()) {
    // Torn tail from a crash mid-append: cut it so the reopened journal
    // resumes at a record boundary.
    if (::ftruncate(fd, static_cast<off_t>(pos)) < 0) {
      const std::string what = std::strerror(errno);
      ::close(fd);
      throw ServeError("journal truncate " + path + ": " + what);
    }
  }
  ::close(fd);
  return records;
}

}  // namespace masc::serve
