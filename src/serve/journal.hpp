// Crash-safe append-only job journal for masc-served.
//
// Every record is one JSON document, length-prefixed with the same
// 4-byte big-endian header as the wire protocol, appended to a single
// file. Durability is per-record: submissions and completions are
// fsync'd before the server acknowledges them, so a SIGKILL at any
// instant loses at most work the client was never told about.
// Checkpoint records (which can be hundreds of KiB and are pure
// optimization — losing one only means re-simulating from an earlier
// point) are appended without fsync.
//
// Replay tolerates a torn tail: a crash mid-append leaves a partial
// length or payload at the end of the file, which replay() detects,
// truncates off, and ignores — the journal is again a clean sequence
// of records for the reopened server to append to.
//
// Record schema (see docs/RELIABILITY.md): every record is an object
// with a "rec" member — "submit", "done", "ckpt", "extend", "release".
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace masc::serve {

class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open `path` for appending, creating it if absent. Throws ServeError
  /// when the file cannot be opened.
  void open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// fsync + close. Safe to call when not open.
  void close();

  /// Append one length-prefixed record; fsync the file first when
  /// `sync`. Thread-safe (called from session, dispatcher, and sweep
  /// worker threads). A no-op when the journal is not open, so call
  /// sites don't need to be gated on journaling being enabled.
  void append(const std::string& payload, bool sync);

  /// Read every intact record of the journal at `path`, in append
  /// order. A missing file yields an empty vector. A torn tail is
  /// truncated off the file so subsequent appends start at a record
  /// boundary. Throws ServeError on I/O errors.
  static std::vector<std::string> replay(const std::string& path);

 private:
  std::mutex mu_;
  int fd_ = -1;
  std::string path_;
};

}  // namespace masc::serve
