// Bounded MPMC job queue with explicit backpressure.
//
// Admission is all-or-nothing per push: a submit request carrying K
// jobs either gets K slots or is rejected outright, so a client never
// ends up with half a request queued. Rejection is immediate (no
// blocking producers) — the server turns it into a queue_full error
// with a retry-after hint, which is the service-level analog of the
// paper's thesis: don't stall the submitter, tell it when the pipeline
// will have room.
//
// Consumers pop in FIFO order, up to a whole batch at a time, so the
// dispatcher can coalesce everything currently waiting into one sweep
// dispatch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace masc::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  /// Admit all of `items` or none. False when closed or when fewer than
  /// items.size() slots are free.
  bool try_push(const std::vector<T>& items) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || q_.size() + items.size() > capacity_) return false;
      q_.insert(q_.end(), items.begin(), items.end());
    }
    cv_.notify_all();
    return true;
  }

  /// Recovery path: enqueue unconditionally, even past capacity. Journal
  /// replay must not drop jobs the server already acknowledged, and a
  /// restart may come up with a smaller queue than the backlog it
  /// inherited. Refused only after close().
  void push_recovered(const std::vector<T>& items) {
    if (items.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      q_.insert(q_.end(), items.begin(), items.end());
    }
    cv_.notify_all();
  }

  /// Block until at least one item is queued (or the queue is closed),
  /// then pop up to `max_items` in FIFO order. An empty result means
  /// the queue was closed and fully drained.
  std::vector<T> pop_batch(std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
    std::vector<T> out;
    while (!q_.empty() && out.size() < max_items) {
      out.push_back(q_.front());
      q_.pop_front();
    }
    return out;
  }

  /// Wake all poppers and refuse further pushes. Items already queued
  /// remain poppable (drain-then-empty).
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace masc::serve
