#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace masc::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve (permits "localhost").
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res)
      throw ServeError("cannot resolve host \"" + host + "\"");
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw ServeError(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string what = std::strerror(errno);
    close();
    throw ServeError("connect " + host + ":" + std::to_string(port) + ": " +
                     what);
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Client::request_raw(const std::string& payload) {
  if (fd_ < 0) throw ServeError("client not connected");
  write_frame(fd_, payload);
  std::string response;
  if (!read_frame(fd_, response))
    throw ServeError("server closed the connection");
  return response;
}

json::Value Client::request(const std::string& payload) {
  return parse_json(request_raw(payload));
}

}  // namespace masc::serve
