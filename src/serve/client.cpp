#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "fault/fault.hpp"

namespace masc::serve {

namespace {

/// Closes the owned fd on every exit path unless release()d — keeps
/// connect() leak-free no matter which step throws.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int get() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }

 private:
  int fd_;
};

}  // namespace

std::uint64_t backoff_delay_ms(const RetryPolicy& policy, unsigned attempt,
                               std::uint64_t hint_ms, Rng& rng) {
  // base·2^attempt, saturating at max_ms (and guarding the shift).
  std::uint64_t cap = policy.max_ms;
  if (attempt < 63) {
    const std::uint64_t growth = policy.base_ms << attempt;
    const bool overflow = policy.base_ms != 0 && (growth >> attempt) != policy.base_ms;
    if (!overflow && growth < cap) cap = growth;
  }
  // Jitter into [cap/2, cap]: enough spread to decorrelate a thundering
  // herd, while keeping the exponential envelope testable.
  std::uint64_t delay = cap;
  if (cap > 1) delay = cap / 2 + rng.next_below(cap - cap / 2 + 1);
  // Never retry before the server said there would be room.
  return std::max(delay, hint_ms);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      host_(std::move(other.host_)),
      port_(other.port_),
      connect_timeout_ms_(other.connect_timeout_ms_),
      io_timeout_ms_(other.io_timeout_ms_),
      protocol_(other.protocol_),
      negotiated_(other.negotiated_),
      pipelining_(other.pipelining_),
      next_request_id_(other.next_request_id_),
      obuf_(std::move(other.obuf_)),
      rbuf_(std::move(other.rbuf_)),
      rpos_(other.rpos_),
      retry_rng_(other.retry_rng_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    host_ = std::move(other.host_);
    port_ = other.port_;
    connect_timeout_ms_ = other.connect_timeout_ms_;
    io_timeout_ms_ = other.io_timeout_ms_;
    protocol_ = other.protocol_;
    negotiated_ = other.negotiated_;
    pipelining_ = other.pipelining_;
    next_request_id_ = other.next_request_id_;
    obuf_ = std::move(other.obuf_);
    rbuf_ = std::move(other.rbuf_);
    rpos_ = other.rpos_;
    retry_rng_ = other.retry_rng_;
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port,
                     std::uint64_t timeout_ms) {
  close();
  host_ = host;
  port_ = port;
  connect_timeout_ms_ = timeout_ms;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve (permits "localhost").
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res)
      throw ServeError("cannot resolve host \"" + host + "\"");
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }

  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0)
    throw ServeError(std::string("socket: ") + std::strerror(errno));

  if (timeout_ms == 0) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0)
      throw ServeError("connect " + host + ":" + std::to_string(port) + ": " +
                       std::strerror(errno));
    set_nodelay(fd.get());
    fd_ = fd.release();
    return;
  }

  // Timed connect: non-blocking connect, poll for writability, read the
  // deferred status via SO_ERROR, then restore blocking mode.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0)
    throw ServeError(std::string("fcntl: ") + std::strerror(errno));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    if (errno != EINPROGRESS)
      throw ServeError("connect " + host + ":" + std::to_string(port) + ": " +
                       std::strerror(errno));
    pollfd p{};
    p.fd = fd.get();
    p.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&p, 1, static_cast<int>(timeout_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0)
      throw ServeTimeout("connect " + host + ":" + std::to_string(port) +
                         ": timed out after " + std::to_string(timeout_ms) +
                         " ms");
    if (rc < 0) throw ServeError(std::string("poll: ") + std::strerror(errno));
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0)
      throw ServeError("connect " + host + ":" + std::to_string(port) + ": " +
                       std::strerror(err ? err : errno));
  }
  if (::fcntl(fd.get(), F_SETFL, flags) < 0)
    throw ServeError(std::string("fcntl: ") + std::strerror(errno));
  set_nodelay(fd.get());
  fd_ = fd.release();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A fresh connection starts at v1 until hello says otherwise.
  protocol_ = 1;
  negotiated_ = false;
  next_request_id_ = 1;
  obuf_.clear();
  rbuf_.clear();
  rpos_ = 0;
}

bool Client::fill_rbuf() {
  if (io_timeout_ms_ != 0) {
    pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    int rc;
    do {
      rc = ::poll(&p, 1, static_cast<int>(io_timeout_ms_));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0)
      throw ServeTimeout("recv: timed out after " +
                         std::to_string(io_timeout_ms_) + " ms");
    if (rc < 0) throw ServeError(std::string("poll: ") + std::strerror(errno));
  }
  constexpr std::size_t kChunk = 128u << 10;
  const std::size_t old = rbuf_.size();
  rbuf_.resize(old + kChunk);
  ssize_t n;
  do {
    n = ::recv(fd_, rbuf_.data() + old, kChunk, 0);
  } while (n < 0 && errno == EINTR);
  rbuf_.resize(old + (n > 0 ? static_cast<std::size_t>(n) : 0));
  if (n == 0) return false;  // peer closed
  if (n < 0) throw ServeError(std::string("recv: ") + std::strerror(errno));
  return true;
}

bool Client::read_frame_buffered(std::string& payload) {
  const auto have = [&] { return rbuf_.size() - rpos_; };
  while (have() < 4) {
    if (!fill_rbuf()) {
      if (have() == 0) return false;  // clean close between frames
      throw ServeError("truncated frame header");
    }
  }
  const auto* h = reinterpret_cast<const unsigned char*>(rbuf_.data() + rpos_);
  const std::size_t len = (static_cast<std::size_t>(h[0]) << 24) |
                          (static_cast<std::size_t>(h[1]) << 16) |
                          (static_cast<std::size_t>(h[2]) << 8) |
                          static_cast<std::size_t>(h[3]);
  if (len > kMaxFrameBytes)
    throw ServeError("frame exceeds " + std::to_string(kMaxFrameBytes) +
                     " bytes");
  while (have() < 4 + len) {
    if (!fill_rbuf()) throw ServeError("truncated frame payload");
  }
  payload.assign(rbuf_, rpos_ + 4, len);
  rpos_ += 4 + len;
  // Compact once everything buffered has been consumed (the common
  // case) or when the dead prefix gets large.
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > (1u << 20)) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
  return true;
}

std::string Client::request_raw(const std::string& payload) {
  if (fd_ < 0) throw ServeError("client not connected");
  flush_v2();  // preserve send order behind any batched v2 frames
  write_frame(fd_, payload, io_timeout_ms_);
  std::string response;
  if (!read_frame_buffered(response))
    throw ServeError("server closed the connection");
  return response;
}

json::Value Client::request(const std::string& payload) {
  return parse_json(request_raw(payload));
}

unsigned Client::negotiate(unsigned max_version) {
  negotiated_ = true;
  if (max_version < 2) return protocol_ = 1;
  // An old server answers hello with an unknown_op error — that leaves
  // the connection perfectly usable, it just means v1.
  const json::Value resp =
      request("{\"op\":\"hello\",\"versions\":[1,2]}");
  if (resp.get_bool("ok", false) && resp.get_uint("version", 1) >= 2)
    protocol_ = 2;
  else
    protocol_ = 1;
  return protocol_;
}

void Client::set_pipelining(bool on) {
  if (!on && fd_ >= 0) flush_v2();
  pipelining_ = on;
}

void Client::flush_v2() {
  if (obuf_.empty()) return;
  write_buffer(fd_, obuf_, io_timeout_ms_);
  obuf_.clear();
}

std::uint32_t Client::send_v2(v2::Op op, std::string_view body) {
  if (fd_ < 0) throw ServeError("client not connected");
  const std::uint32_t id = next_request_id_++;
  const std::string msg = v2::encode(op, v2::Kind::kRequest, id, body);
  if (!pipelining_ || fault::active()) {
    // Per-frame sends: the plain path, and the only one an installed
    // fault injector sees (drops/truncations stay frame-accurate).
    flush_v2();
    write_frame(fd_, msg, io_timeout_ms_);
  } else {
    append_frame(obuf_, msg);
    constexpr std::size_t kFlushBytes = 256u << 10;
    if (obuf_.size() >= kFlushBytes) flush_v2();
  }
  return id;
}

Client::V2Response Client::recv_v2() {
  if (fd_ < 0) throw ServeError("client not connected");
  flush_v2();
  std::string payload;
  if (!read_frame_buffered(payload))
    throw ServeError("server closed the connection");
  if (!v2::is_v2(payload))
    throw ServeError("expected a v2 frame, got a v1 payload");
  const v2::Frame f = v2::decode(payload);
  V2Response r;
  r.op = f.op;
  r.request_id = f.request_id;
  r.ok = f.kind == v2::Kind::kOk;
  r.body.assign(f.body.data(), f.body.size());
  return r;
}

json::Value Client::request_v2(v2::Op op, const std::string& body) {
  const std::uint32_t id = send_v2(op, body);
  const V2Response r = recv_v2();
  if (r.request_id != id)
    throw ServeError("v2 response id mismatch (pipelining misuse)");
  return parse_json(r.body);
}

bool Client::cache_get_v2(const Hash128& key, std::string* record) {
  const std::uint32_t id = send_v2(
      v2::Op::kCacheGet,
      std::string_view(v2::encode_cache_get_request(0, key)).substr(
          v2::kHeaderBytes));
  const V2Response r = recv_v2();
  if (r.request_id != id)
    throw ServeError("v2 response id mismatch (pipelining misuse)");
  if (!r.ok) {
    const json::Value err = parse_json(r.body);
    throw ServeError("cache_get failed: " +
                     err.get_string("error", "unknown"));
  }
  return v2::decode_cache_get_response(r.body, r.request_id, record);
}

namespace {

std::string endpoint_key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

}  // namespace

Client ClientPool::acquire(const std::string& host, std::uint16_t port) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = idle_.find(endpoint_key(host, port));
    if (it != idle_.end() && !it->second.empty()) {
      Client c = std::move(it->second.back());
      it->second.pop_back();
      return c;
    }
  }
  Client c;
  c.set_io_timeout_ms(io_timeout_ms_);
  c.connect(host, port, connect_timeout_ms_);
  return c;
}

void ClientPool::release(const std::string& host, std::uint16_t port,
                         Client client) {
  if (!client.connected()) return;  // broken: let it close
  const std::lock_guard<std::mutex> lock(mu_);
  auto& parked = idle_[endpoint_key(host, port)];
  if (parked.size() < kMaxIdlePerEndpoint) parked.push_back(std::move(client));
}

void ClientPool::clear(const std::string& host, std::uint16_t port) {
  const std::lock_guard<std::mutex> lock(mu_);
  idle_.erase(endpoint_key(host, port));
}

std::size_t ClientPool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [ep, parked] : idle_) n += parked.size();
  return n;
}

json::Value Client::request_with_retry(const std::string& payload,
                                       const RetryPolicy& policy) {
  // A non-zero policy seed pins the jitter stream (reproducible tests);
  // seed 0 draws from the client's ongoing stream.
  Rng seeded(policy.seed);
  Rng& rng = policy.seed != 0 ? seeded : retry_rng_;
  const unsigned attempts = std::max(policy.max_attempts, 1u);
  for (unsigned attempt = 0;; ++attempt) {
    std::uint64_t hint_ms = 0;
    try {
      if (!connected()) {
        if (host_.empty()) throw ServeError("client was never connected");
        connect(host_, port_, connect_timeout_ms_);
      }
      json::Value resp = request(payload);
      const bool retryable_reject =
          !resp.get_bool("ok", true) &&
          resp.get_string("error", "") == "queue_full";
      if (!retryable_reject) return resp;
      if (attempt + 1 >= attempts) return resp;  // hand the caller the error
      hint_ms = resp.get_uint("retry_after_ms", 0);
    } catch (const ServeError&) {
      // Transport failure: the connection is suspect either way.
      close();
      if (attempt + 1 >= attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        backoff_delay_ms(policy, attempt, hint_ms, rng)));
  }
}

}  // namespace masc::serve
