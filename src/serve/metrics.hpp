// Live observability counters for the simulation service.
//
// Everything a `{"op":"stats"}` request reports lives here: admission
// and completion counters, a log2 histogram of per-job host seconds,
// and aggregate simulated-work roll-ups (cycles, instructions, IPC,
// idle-by-cause) accumulated across every completed job. One mutex
// guards the lot — updates are once per job, not per cycle, so
// contention is irrelevant next to a simulation's runtime.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "sim/stats.hpp"
#include "sim/sweep.hpp"

namespace masc::serve {

class ServeMetrics {
 public:
  /// Host-seconds histogram buckets: le_1ms, le_2ms, ... le_32768ms,
  /// then overflow. Log2 spacing covers microbenchmark jobs and
  /// half-minute monsters with 17 integers.
  static constexpr std::size_t kHistBuckets = 17;

  void on_accepted(std::uint64_t n);
  void on_rejected(std::uint64_t n);
  void on_batch(std::uint64_t jobs_in_batch);
  /// Classify one finished job by status and fold its stats into the
  /// aggregates (all statuses contribute host time; partial simulated
  /// work from cancelled/expired jobs counts too — it was paid for).
  void on_done(const SweepResult& r);

  /// Mean host seconds of completed jobs; `dflt` until the first one.
  double mean_job_seconds(double dflt) const;

  /// One JSON object. Queue depth and in-flight count are owned by the
  /// server (they are live state, not counters) and passed in, as is the
  /// result-cache snapshot (null when the cache is disabled — the
  /// "cache" field then reports {"enabled":false}) and the runner's
  /// lane-batching snapshot (null omits the "batch" field entirely).
  std::string to_json(std::size_t queue_depth, std::size_t in_flight,
                      std::size_t queue_capacity,
                      const TieredCacheStats* cache = nullptr,
                      const SweepBatchStats* batch = nullptr) const;

  /// The same counters in Prometheus text exposition format (served by
  /// {"op":"metrics_text"}; metric names documented in docs/SERVER.md).
  /// Counter names end in _total; the host-time histogram is exposed as
  /// a cumulative masc_served_job_host_ms histogram, and the
  /// lane-batching occupancy as masc_served_batch_occupancy.
  std::string to_prometheus(std::size_t queue_depth, std::size_t in_flight,
                            std::size_t queue_capacity,
                            const TieredCacheStats* cache = nullptr,
                            const SweepBatchStats* batch = nullptr) const;

 private:
  mutable std::mutex mu_;

  std::uint64_t submitted_ = 0;   ///< jobs admitted to the queue
  std::uint64_t rejected_ = 0;    ///< jobs refused with queue_full
  std::uint64_t batches_ = 0;     ///< sweep dispatches issued
  std::uint64_t completed_ = 0;   ///< status == finished
  std::uint64_t cycle_limited_ = 0;
  std::uint64_t failed_ = 0;      ///< status == error
  std::uint64_t cancelled_ = 0;
  std::uint64_t deadline_exceeded_ = 0;

  std::array<std::uint64_t, kHistBuckets> host_ms_hist_{};
  double host_seconds_total_ = 0.0;

  // Aggregate simulated work across all jobs that produced stats.
  std::uint64_t cycles_total_ = 0;
  std::uint64_t instructions_total_ = 0;
  std::uint64_t idle_cycles_total_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(StallCause::kCauseCount)>
      idle_by_cause_total_{};
};

}  // namespace masc::serve
