// masc-served core: a long-running simulation service on localhost TCP.
//
// Architecture (one paragraph): an accept thread hands each connection
// to one of `io_threads` epoll event loops (src/net/, docs/NET.md),
// which parse length-prefixed frames and dispatch requests inline on
// the loop thread — both v1 JSON (serve/protocol.hpp) and the
// negotiated binary protocol v2 (serve/protocol_v2.hpp), pipelined
// many-in-flight per connection. Submitted jobs are compiled on the
// loop thread, admitted all-or-nothing into a bounded queue
// (backpressure: a full queue rejects with a retry-after hint instead
// of blocking), and drained by a dispatcher thread that coalesces
// everything currently waiting — up to `batch_max` — into ONE
// SweepRunner dispatch across the worker pool. A `result` wait never
// blocks its loop: it parks as an async waiter that the dispatcher's
// completion callback posts back to the owning loop. This is the
// paper's latency-hiding argument applied to the host: bursty
// heterogeneous arrivals keep the workers full because the dispatcher
// always has a batch ready, while each simulation stays a pure
// function of (config, program, seed), so results are bit-identical to
// a serial run no matter how requests interleave.
//
// Cancellation is cooperative (per-job token, observed at sweep chunk
// boundaries) and deadlines are wall-clock, measured from submission.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "serve/journal.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/protocol_v2.hpp"
#include "serve/queue.hpp"

namespace masc::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see Server::port).
  std::uint16_t port = 0;
  /// SweepRunner worker threads; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Queue slots. Submits that do not fit entirely are rejected.
  std::size_t queue_capacity = 256;
  /// Max jobs coalesced into one sweep dispatch.
  std::size_t batch_max = 64;
  /// Server-side clamp on any job's cycle limit.
  Cycle max_cycles_cap = 1'000'000'000;
  /// Deadline applied to jobs that do not carry their own, in ms from
  /// submission; 0 = none.
  std::uint64_t default_deadline_ms = 0;
  /// Host threads simulating the PE array for jobs that do not request
  /// their own "sim_threads" (docs/THREADING.md). 1 = serial. Trades
  /// job-level parallelism (workers) for intra-job parallelism on big
  /// configs; results and cache keys are identical either way.
  std::uint32_t sim_threads = 1;
  /// SIMD-over-jobs lane width for jobs that do not request their own
  /// "batch_lanes" (docs/PERF.md "Lane batching"). 1 = serial. Up to N
  /// homogeneous queued jobs execute in lockstep on one worker; results
  /// and cache keys are identical either way. Journaled servers run
  /// jobs with checkpoint-on-stop, which excludes them from batching,
  /// so this knob is inert when `journal_path` is set.
  std::uint32_t batch_lanes = 1;

  // --- Result cache (docs/PERF.md "Result cache") -----------------------------
  /// Byte budget for the deterministic result cache; 0 disables it.
  /// With a cache, a submit whose jobs were all seen before completes
  /// at admission time — without taking queue slots, so repeat traffic
  /// is served even when the queue is saturated — and the SweepRunner
  /// answers queued repeats and dedups identical jobs within a batch.
  std::size_t cache_bytes = 0;
  /// Lock shards of the cache (contention vs. memory granularity).
  unsigned cache_shards = 16;
  /// Directory for the crash-durable L2 disk tier (docs/CACHE.md);
  /// empty = RAM-only. Setting this with cache_bytes == 0 enables the
  /// cache with a 64 MiB RAM tier (a disk tier needs an L1 in front).
  /// An unusable directory degrades to RAM-only with a counter — it
  /// never stops the server.
  std::string cache_dir;
  /// Disk tier byte budget (oldest segments retire past it).
  std::size_t cache_disk_bytes = 256u << 20;
  /// Disk tier segment size (rotation threshold).
  std::size_t cache_segment_bytes = 8u << 20;

  // --- Resilience (docs/RELIABILITY.md) ---------------------------------------
  /// Append-only job journal path; empty disables journaling. With a
  /// journal, start() replays it: completed jobs serve their recorded
  /// results, unfinished jobs are re-enqueued (resuming from their last
  /// checkpoint when one was recorded), and duplicate submits carrying
  /// the same "key" return the original ids.
  std::string journal_path;
  /// Journal a running job's checkpoint every N sweep chunks (N ×
  /// 65536 cycles); 0 = only at drain. Requires a journal.
  std::uint32_t checkpoint_every_chunks = 0;
  /// Per-chunk socket read/write budget per session, ms; 0 = unbounded.
  std::uint64_t io_timeout_ms = 0;
  /// Reap sessions idle (no request frame) this long, ms; 0 = never.
  std::uint64_t idle_timeout_ms = 0;
  /// Event-loop threads serving connections (docs/NET.md). Each loop
  /// multiplexes its share of the connections with epoll; 0 = 1.
  unsigned io_threads = 2;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept + dispatcher threads. Throws
  /// ServeError if the port cannot be bound.
  void start();

  /// Drain: refuse new connections and submissions, cancel queued and
  /// running jobs, join every thread. Idempotent.
  void stop();

  /// Graceful drain for SIGTERM: like stop(), but jobs interrupted
  /// mid-run are checkpointed to the journal instead of being reported
  /// as cancelled, and queued jobs are left journaled-but-unfinished —
  /// a restart on the same journal resumes all of them bit-identically.
  /// Without a journal this degrades to stop(). Idempotent (and
  /// exclusive with stop(): whichever runs first wins).
  void drain();

  /// The bound port (after start()); useful with ServerOptions::port = 0.
  std::uint16_t port() const { return port_; }

  /// True once a client has sent {"op":"shutdown"}; the embedding
  /// program is expected to notice and call stop().
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// The same JSON served to {"op":"stats"} (for embedding/tests).
  std::string stats_json() const;

  /// Prometheus text exposition of the same counters, as served to
  /// {"op":"metrics_text"} (docs/SERVER.md "Prometheus metrics").
  std::string metrics_text() const;

 private:
  enum class JobState : std::uint8_t { kQueued, kRunning, kDone };

  struct JobRecord {
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    SweepJob job;          ///< carries the cancel token and deadline
    SweepResult result;    ///< valid once state == kDone
    /// Serialized result object, as served to {"op":"result"}. Filled on
    /// completion and by journal replay of "done" records (for which
    /// `result` holds only the status/error fields).
    std::string result_json;
    /// True when {"op":"cancel"} fired this job's token, distinguishing
    /// a user cancellation (a final result) from a drain interruption
    /// (checkpointed, resumed on restart).
    bool user_cancelled = false;
  };

  /// Where an async `result` response must be delivered once the job
  /// completes (or the wait times out): the conn is named by
  /// (loop, conn id) so a connection that died in the meantime is a
  /// silent no-op, and the original request payload is re-dispatched on
  /// wake so release/journal semantics are identical to a fresh request.
  struct WaitTarget {
    net::EventLoop* loop = nullptr;
    std::uint64_t conn_id = 0;
    bool v2 = false;
    std::uint32_t v2_id = 0;     ///< v2: request id to echo
    std::uint64_t v1_slot = 0;   ///< v1: ordered-response slot
    std::string request;         ///< original JSON request payload
  };

  struct ResultWaiter {
    std::uint64_t uid = 0;  ///< registry handle (timer vs wake races)
    std::uint64_t job_id = 0;
    WaitTarget target;
  };

  /// Per-connection protocol state, attached to net::Conn::ctx. v1
  /// responses go out strictly in request order (slots); v2 responses
  /// are written as they complete and matched by request id.
  struct ConnState {
    std::deque<std::pair<std::uint64_t, std::optional<std::string>>> v1_q;
    std::uint64_t next_slot = 1;
  };

  void accept_loop();
  void dispatch_loop();

  // Event-loop entry points (loop thread).
  void on_frame(net::Conn& c, std::string&& payload);
  void on_conn_close(net::Conn& c);
  void handle_v2_frame(net::Conn& c, const std::string& payload);
  static ConnState& conn_state(net::Conn& c);
  /// Fill `slot` and flush every in-order response now available.
  void send_v1(net::Conn& c, std::uint64_t slot, std::string&& resp);

  // Async result-wait plumbing.
  void wake_result_waiters(std::uint64_t job_id);
  void wake_all_waiters();
  void deliver_waiter(const ResultWaiter& w);  ///< loop thread
  void expire_waiter(std::uint64_t job_id, std::uint64_t uid);

  /// Parse + dispatch one request payload. Returns the response, or
  /// nullopt when the request parked as an async waiter (only `result`
  /// with wait=true does; requires `wt`). Protocol-level errors become
  /// {"ok":false,...} responses; `forced_op` overrides the payload's
  /// "op" member (v2 frames name the op in their header).
  std::optional<std::string> handle_request(const std::string& payload,
                                            const WaitTarget* wt,
                                            const char* forced_op = nullptr);

  std::string handle_submit(const json::Value& req);
  std::string handle_status(const json::Value& req);
  std::optional<std::string> handle_result(const json::Value& req,
                                           const WaitTarget* wt);
  std::string handle_cancel(const json::Value& req);
  std::string handle_extend(const json::Value& req);
  std::string handle_cache_get(const json::Value& req);
  std::string handle_cache_stats();
  std::string handle_cache_flush();

  /// Replay one journal record into jobs_ / jobs_by_key_ / next_id_.
  /// Unparseable or stale records are skipped (crash-written garbage
  /// must not keep the server from starting).
  void apply_journal_record(const std::string& payload);
  /// Shared shutdown path: `park_interrupted` selects drain() semantics.
  void shutdown_impl(bool park_interrupted);

  ServerOptions opts_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  SweepRunner runner_;
  BoundedQueue<std::uint64_t> queue_;
  ServeMetrics metrics_;
  /// Shared with runner_; null when opts_.cache_bytes == 0.
  std::shared_ptr<SweepResultCache> cache_;

  Journal journal_;                          ///< no-op unless journal_path set

  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;          ///< signalled per job completion
  std::map<std::uint64_t, JobRecord> jobs_;  ///< id → record
  /// job id → parked result-waits, woken by the dispatcher's completion
  /// callback (guarded by jobs_mu_).
  std::unordered_multimap<std::uint64_t, ResultWaiter> waiters_;
  std::uint64_t next_waiter_uid_ = 1;        ///< guarded by jobs_mu_
  /// Idempotency: submit "key" → the ids of the submit that created it.
  /// Rebuilt from the journal on restart, so a client that resends a
  /// keyed submit after a crash gets its original ids, not fresh jobs.
  std::map<std::string, std::vector<std::uint64_t>> jobs_by_key_;
  std::atomic<std::uint64_t> next_id_{1};
  std::size_t running_ = 0;                  ///< jobs in the current batch

  /// `io_threads` epoll loops; every connection lives on exactly one.
  std::unique_ptr<net::LoopGroup> loops_;

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};        ///< drain() (vs stop()) shutdown
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace masc::serve
