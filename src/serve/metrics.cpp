#include "serve/metrics.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/simd.hpp"

namespace masc::serve {

namespace {

/// Bucket index for a job that took `seconds` of host time: bucket k
/// holds jobs with ms in (2^(k-1), 2^k], bucket 0 holds <= 1 ms, the
/// last bucket collects everything above 2^(kHistBuckets-2) ms.
std::size_t hist_bucket(double seconds) {
  const double ms = seconds * 1e3;
  std::size_t b = 0;
  double bound = 1.0;
  while (b + 1 < ServeMetrics::kHistBuckets && ms > bound) {
    bound *= 2.0;
    ++b;
  }
  return b;
}

}  // namespace

void ServeMetrics::on_accepted(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  submitted_ += n;
}

void ServeMetrics::on_rejected(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  rejected_ += n;
}

void ServeMetrics::on_batch(std::uint64_t /*jobs_in_batch*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
}

void ServeMetrics::on_done(const SweepResult& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  switch (r.status) {
    case SweepStatus::kFinished: ++completed_; break;
    case SweepStatus::kCycleLimit: ++cycle_limited_; break;
    case SweepStatus::kError: ++failed_; break;
    case SweepStatus::kCancelled: ++cancelled_; break;
    case SweepStatus::kDeadlineExceeded: ++deadline_exceeded_; break;
  }
  ++host_ms_hist_[hist_bucket(r.host_seconds)];
  host_seconds_total_ += r.host_seconds;
  cycles_total_ += r.stats.cycles;
  instructions_total_ += r.stats.instructions;
  idle_cycles_total_ += r.stats.idle_cycles;
  for (std::size_t c = 0; c < idle_by_cause_total_.size(); ++c)
    idle_by_cause_total_[c] += r.stats.idle_by_cause[c];
}

double ServeMetrics::mean_job_seconds(double dflt) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t done = completed_ + cycle_limited_ + failed_ +
                             cancelled_ + deadline_exceeded_;
  if (done == 0) return dflt;
  return host_seconds_total_ / static_cast<double>(done);
}

std::string ServeMetrics::to_json(std::size_t queue_depth,
                                  std::size_t in_flight,
                                  std::size_t queue_capacity,
                                  const TieredCacheStats* cache,
                                  const SweepBatchStats* batch) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"queue_depth\":" << queue_depth;
  os << ",\"queue_capacity\":" << queue_capacity;
  os << ",\"in_flight\":" << in_flight;
  // Host SIMD probe: what `--batch-lanes auto` resolves to on this
  // build (docs/PERF.md "Lane batching").
  os << ",\"simd\":" << simd_stats_json();
  if (cache)
    os << ",\"cache\":{\"enabled\":true,"
       << masc::to_json(*cache).substr(1);  // splice the per-tier fields in
  else
    os << ",\"cache\":{\"enabled\":false}";
  if (batch) os << ",\"batch\":" << masc::to_json(*batch);
  os << ",\"counters\":{";
  os << "\"submitted\":" << submitted_;
  os << ",\"rejected\":" << rejected_;
  os << ",\"batches\":" << batches_;
  os << ",\"completed\":" << completed_;
  os << ",\"cycle_limited\":" << cycle_limited_;
  os << ",\"failed\":" << failed_;
  os << ",\"cancelled\":" << cancelled_;
  os << ",\"deadline_exceeded\":" << deadline_exceeded_;
  os << "}";
  os << ",\"host_ms_hist\":[";
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (b) os << ",";
    os << host_ms_hist_[b];
  }
  os << "]";
  os << ",\"host_seconds\":" << host_seconds_total_;
  os << ",\"aggregate\":{";
  os << "\"cycles\":" << cycles_total_;
  os << ",\"instructions\":" << instructions_total_;
  const double ipc = cycles_total_ == 0
                         ? 0.0
                         : static_cast<double>(instructions_total_) /
                               static_cast<double>(cycles_total_);
  os << ",\"ipc\":" << ipc;
  os << ",\"idle_cycles\":" << idle_cycles_total_;
  os << ",\"idle_by_cause\":{";
  bool first = true;
  for (std::size_t c = 1;
       c < static_cast<std::size_t>(StallCause::kCauseCount); ++c) {
    if (!first) os << ",";
    first = false;
    os << "\"" << to_string(static_cast<StallCause>(c))
       << "\":" << idle_by_cause_total_[c];
  }
  os << "}}}";
  return os.str();
}

std::string ServeMetrics::to_prometheus(std::size_t queue_depth,
                                        std::size_t in_flight,
                                        std::size_t queue_capacity,
                                        const TieredCacheStats* cache,
                                        const SweepBatchStats* batch) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  auto gauge = [&](const char* name, auto value, const char* help) {
    os << "# HELP " << name << " " << help << "\n# TYPE " << name
       << " gauge\n" << name << " " << value << "\n";
  };
  auto counter = [&](const char* name, auto value, const char* help) {
    os << "# HELP " << name << " " << help << "\n# TYPE " << name
       << " counter\n" << name << " " << value << "\n";
  };
  gauge("masc_served_queue_depth", queue_depth, "Jobs waiting in the queue");
  gauge("masc_served_queue_capacity", queue_capacity, "Queue slots");
  gauge("masc_served_jobs_in_flight", in_flight,
        "Jobs in the currently dispatched batch");
  gauge("masc_served_simd_width_bits", host_simd().width_bits,
        "Host SIMD register width detected at build time");
  gauge("masc_served_auto_batch_lanes", host_simd().auto_lanes,
        "Lane count --batch-lanes auto resolves to on this build");
  counter("masc_served_jobs_submitted_total", submitted_,
          "Jobs admitted to the queue");
  counter("masc_served_jobs_rejected_total", rejected_,
          "Jobs refused with queue_full");
  counter("masc_served_batches_total", batches_, "Sweep dispatches issued");
  if (batch) {
    // Lane batching (docs/PERF.md "Lane batching"): one flush = one
    // lockstep dispatch of `occupancy` homogeneous jobs on one worker.
    counter("masc_served_batch_flushes_total", batch->batch_flushes,
            "Lane-batched lockstep dispatches");
    counter("masc_served_batch_jobs_total", batch->batched_jobs,
            "Jobs entered into a lane batch");
    counter("masc_served_batch_replayed_jobs_total", batch->replayed_jobs,
            "Lanes ejected to a serial replay (control divergence)");
    counter("masc_served_batch_faulted_lanes_total", batch->faulted_lanes,
            "Lanes masked out by a per-lane data fault");
    // Occupancy as a cumulative histogram: internal bucket b counts
    // flushes of [2^(b-1), 2^b) lanes, so its upper edge is 2^b - 1.
    os << "# HELP masc_served_batch_occupancy Lanes per batch flush\n"
       << "# TYPE masc_served_batch_occupancy histogram\n";
    std::uint64_t bcum = 0;
    const std::size_t nb = batch->occupancy.size();
    for (std::size_t b = 0; b + 1 < nb; ++b) {
      bcum += batch->occupancy[b];
      os << "masc_served_batch_occupancy_bucket{le=\"" << ((1ULL << b) - 1)
         << "\"} " << bcum << "\n";
    }
    bcum += batch->occupancy[nb - 1];
    os << "masc_served_batch_occupancy_bucket{le=\"+Inf\"} " << bcum << "\n"
       << "masc_served_batch_occupancy_count " << bcum << "\n"
       << "masc_served_batch_occupancy_sum " << batch->batched_jobs << "\n";
  }
  os << "# HELP masc_served_jobs_done_total Completed jobs by final status\n"
     << "# TYPE masc_served_jobs_done_total counter\n";
  const std::pair<const char*, std::uint64_t> done[] = {
      {"finished", completed_},
      {"cycle_limit", cycle_limited_},
      {"error", failed_},
      {"cancelled", cancelled_},
      {"deadline_exceeded", deadline_exceeded_}};
  for (const auto& [status, count] : done)
    os << "masc_served_jobs_done_total{status=\"" << status << "\"} " << count
       << "\n";
  // The log2 host-time histogram, as a cumulative Prometheus histogram
  // in milliseconds (bucket k of the internal array is le 2^k ms).
  os << "# HELP masc_served_job_host_ms Per-job host wall time\n"
     << "# TYPE masc_served_job_host_ms histogram\n";
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b + 1 < kHistBuckets; ++b) {
    cum += host_ms_hist_[b];
    os << "masc_served_job_host_ms_bucket{le=\"" << (1ULL << b) << "\"} "
       << cum << "\n";
  }
  cum += host_ms_hist_[kHistBuckets - 1];
  os << "masc_served_job_host_ms_bucket{le=\"+Inf\"} " << cum << "\n"
     << "masc_served_job_host_ms_count " << cum << "\n"
     << "masc_served_job_host_ms_sum " << host_seconds_total_ * 1e3 << "\n";
  counter("masc_served_sim_cycles_total", cycles_total_,
          "Simulated cycles across all jobs");
  counter("masc_served_sim_instructions_total", instructions_total_,
          "Simulated instructions across all jobs");
  counter("masc_served_sim_idle_cycles_total", idle_cycles_total_,
          "Simulated idle PE-cycles across all jobs");
  os << "# HELP masc_served_sim_idle_cycles_by_cause_total Idle cycles by "
        "stall cause\n"
     << "# TYPE masc_served_sim_idle_cycles_by_cause_total counter\n";
  for (std::size_t c = 1;
       c < static_cast<std::size_t>(StallCause::kCauseCount); ++c)
    os << "masc_served_sim_idle_cycles_by_cause_total{cause=\""
       << to_string(static_cast<StallCause>(c)) << "\"} "
       << idle_by_cause_total_[c] << "\n";
  gauge("masc_served_cache_enabled", cache ? 1 : 0,
        "1 when the result cache is configured");
  if (cache) {
    counter("masc_served_cache_hits_total", cache->hits, "Result cache hits");
    counter("masc_served_cache_misses_total", cache->misses,
            "Result cache misses");
    counter("masc_served_cache_insertions_total", cache->insertions,
            "Result cache insertions");
    counter("masc_served_cache_evictions_total", cache->evictions,
            "Result cache LRU evictions");
    gauge("masc_served_cache_entries", cache->entries,
          "Live result cache entries");
    gauge("masc_served_cache_bytes", cache->bytes,
          "Live result cache charged bytes");
    gauge("masc_served_cache_capacity_bytes", cache->capacity_bytes,
          "Result cache byte budget");
    // Tier breakdown (docs/CACHE.md): L1 = RAM LRU, L2 = disk segment
    // store; `hits_total` above is the combined outcome.
    counter("masc_served_cache_l1_hits_total", cache->l1_hits,
            "Lookups served from the RAM tier");
    counter("masc_served_cache_l2_hits_total", cache->l2_hits,
            "Lookups served by promoting a disk record");
    counter("masc_served_cache_promotions_total", cache->promotions,
            "L2 -> L1 promotions");
    counter("masc_served_cache_demotions_total", cache->demotions,
            "Records written behind to the disk tier");
    counter("masc_served_cache_demote_drops_total", cache->demote_drops,
            "Write-behind records shed on queue overflow");
    counter("masc_served_cache_decode_failures_total", cache->decode_failures,
            "Disk records that failed to decode (served as misses)");
    counter("masc_served_cache_flights_led_total", cache->flights_led,
            "Single-flight computations claimed");
    counter("masc_served_cache_flights_joined_total", cache->flights_joined,
            "Lookups that waited behind an in-progress flight");
    counter("masc_served_cache_flights_served_total", cache->flights_served,
            "Waits resolved by the flight leader's publish");
    gauge("masc_served_cache_l2_enabled", cache->disk_enabled ? 1 : 0,
          "1 when a disk tier is attached");
    gauge("masc_served_cache_l2_open_failed",
          cache->disk_open_failed ? 1 : 0,
          "1 when --cache-dir was configured but could not be opened");
    if (cache->disk_enabled) {
      const CacheStoreStats& d = cache->disk;
      gauge("masc_served_cache_l2_entries", d.entries,
            "Live records in the disk tier");
      gauge("masc_served_cache_l2_bytes", d.bytes, "Disk tier segment bytes");
      gauge("masc_served_cache_l2_capacity_bytes", d.capacity_bytes,
            "Disk tier byte budget");
      gauge("masc_served_cache_l2_segments", d.segments,
            "Disk tier segment files");
      counter("masc_served_cache_l2_gets_total", d.gets, "Disk tier reads");
      counter("masc_served_cache_l2_read_hits_total", d.hits,
              "Disk tier reads that found a valid record");
      counter("masc_served_cache_l2_puts_total", d.puts,
              "Records appended to the disk tier");
      counter("masc_served_cache_l2_put_failures_total", d.put_failures,
              "Disk writes refused or failed (degraded path)");
      counter("masc_served_cache_l2_corrupt_skipped_total", d.corrupt_skipped,
              "Checksum-failed records skipped");
      counter("masc_served_cache_l2_torn_truncated_total", d.torn_truncated,
              "Torn segment tails cut during recovery");
      counter("masc_served_cache_l2_records_evicted_total", d.records_evicted,
              "Live records lost with retired segments");
      counter("masc_served_cache_l2_records_salvaged_total",
              d.records_salvaged,
              "Live records recompacted before segment retirement");
      gauge("masc_served_cache_l2_degraded", d.degraded ? 1 : 0,
            "1 when disk writes are disabled after a hard failure");
    }
  }
  return os.str();
}

}  // namespace masc::serve
