// Length-prefixed frame transport shared by every speaker of the MASC
// wire protocol: masc-served sessions, the blocking Client, and the
// masc-routerd cluster router (which is both at once — a server to its
// clients, a client to its backends).
//
// A frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. This header owns the frame I/O primitives, the
// frame size cap, and the transport error types; the request/response
// JSON schemas live one layer up in serve/protocol.hpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace masc::serve {

/// Raised for socket-level failures (bind, connect, framing).
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by the timed frame I/O below when the peer stays silent past
/// the deadline. A subclass so callers can treat "slow" differently
/// from "broken" (the server reaps idle sessions on it; the client
/// retries on it).
class ServeTimeout : public ServeError {
 public:
  using ServeError::ServeError;
};

/// Hard cap on one frame's payload. Large enough for a program image of
/// several hundred thousand words plus data; small enough that a bad
/// client cannot make the server allocate gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Read one length-prefixed frame into `payload`. Returns false on a
/// clean peer close before any length byte; throws ServeError on a
/// truncated frame, an I/O error, or a length above kMaxFrameBytes.
bool read_frame(int fd, std::string& payload);

/// Write one length-prefixed frame. Throws ServeError on I/O failure
/// (including peer reset) or payloads above kMaxFrameBytes.
void write_frame(int fd, const std::string& payload);

/// Timed variant of read_frame: wait up to `first_ms` for the frame to
/// begin (the idle budget between requests) and up to `io_ms` for each
/// subsequent chunk once it has (a stalled mid-frame peer). Either 0
/// waits forever. Throws ServeTimeout when a budget expires.
bool read_frame(int fd, std::string& payload, std::uint64_t first_ms,
                std::uint64_t io_ms);

/// Disable Nagle (TCP_NODELAY) on a connected stream socket. The frame
/// writer issues the 4-byte header and the payload as separate sends;
/// with Nagle on, the second send can sit behind the peer's delayed ACK
/// for ~40ms per frame — a disaster for the request/response protocol.
/// Every speaker (client connect, server accept, router accept) calls
/// this; failure is ignored (non-TCP fds in tests).
void set_nodelay(int fd);

/// Timed variant of write_frame: wait up to `io_ms` (0 = forever) for
/// the socket to accept each chunk. Throws ServeTimeout on expiry.
///
/// Both write_frame overloads are the injection point for frame faults
/// (fault/fault.hpp): an installed FaultInjector can silently drop the
/// frame, delay it, or truncate it mid-payload (the truncation throws
/// ServeError, modelling a sender that died mid-send).
void write_frame(int fd, const std::string& payload, std::uint64_t io_ms);

/// Append one framed message (header + payload) to `out` without
/// sending — the batching half of a pipelined writer: many frames
/// accumulate, then one write_buffer() flushes them in a single send.
/// No fault-injection hook; batching callers fall back to write_frame
/// while an injector is active so faults keep per-frame semantics.
/// Throws ServeError on payloads above kMaxFrameBytes.
void append_frame(std::string& out, std::string_view payload);

/// Flush pre-framed bytes (from append_frame) in one timed send.
void write_buffer(int fd, std::string_view bytes, std::uint64_t io_ms);

}  // namespace masc::serve
