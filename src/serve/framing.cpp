#include "serve/framing.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "fault/fault.hpp"

namespace masc::serve {

namespace {

/// Wait for `events` on fd for up to `timeout_ms` (0 = forever).
/// Returns false on timeout; throws on poll failure. Socket errors are
/// reported as readiness and surface from the recv/send that follows.
bool wait_for(int fd, short events, std::uint64_t timeout_ms) {
  if (timeout_ms == 0) return true;  // let recv/send block
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, static_cast<int>(timeout_ms));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw ServeError(std::string("poll: ") + std::strerror(errno));
  }
}

/// recv() exactly `len` bytes, waiting at most `timeout_ms` (0 = no
/// limit) for each chunk. Returns the byte count actually read (short
/// only at EOF); throws ServeTimeout / ServeError.
std::size_t recv_all(int fd, char* buf, std::size_t len,
                     std::uint64_t timeout_ms) {
  std::size_t got = 0;
  while (got < len) {
    if (!wait_for(fd, POLLIN, timeout_ms))
      throw ServeTimeout("recv: timed out after " +
                         std::to_string(timeout_ms) + " ms");
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ServeError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

void send_all(int fd, const char* buf, std::size_t len,
              std::uint64_t timeout_ms) {
  std::size_t sent = 0;
  while (sent < len) {
    if (!wait_for(fd, POLLOUT, timeout_ms))
      throw ServeTimeout("send: timed out after " +
                         std::to_string(timeout_ms) + " ms");
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface
    // as an error on this session, not SIGPIPE for the whole server.
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ServeError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void frame_header(std::size_t len, unsigned char hdr[4]) {
  hdr[0] = static_cast<unsigned char>(len >> 24);
  hdr[1] = static_cast<unsigned char>(len >> 16);
  hdr[2] = static_cast<unsigned char>(len >> 8);
  hdr[3] = static_cast<unsigned char>(len);
}

}  // namespace

bool read_frame(int fd, std::string& payload, std::uint64_t first_ms,
                std::uint64_t io_ms) {
  unsigned char hdr[4];
  // The wait for the header is the *idle* budget (time between
  // requests); once the frame has started, the per-chunk budget applies.
  if (!wait_for(fd, POLLIN, first_ms))
    throw ServeTimeout("idle: no frame within " + std::to_string(first_ms) +
                       " ms");
  const std::size_t got = recv_all(fd, reinterpret_cast<char*>(hdr), 4, io_ms);
  if (got == 0) return false;  // clean close between frames
  if (got < 4) throw ServeError("truncated frame header");
  const std::size_t len = (static_cast<std::size_t>(hdr[0]) << 24) |
                          (static_cast<std::size_t>(hdr[1]) << 16) |
                          (static_cast<std::size_t>(hdr[2]) << 8) |
                          static_cast<std::size_t>(hdr[3]);
  if (len > kMaxFrameBytes)
    throw ServeError("frame exceeds " + std::to_string(kMaxFrameBytes) +
                     " bytes");
  payload.resize(len);
  if (recv_all(fd, payload.data(), len, io_ms) < len)
    throw ServeError("truncated frame payload");
  return true;
}

bool read_frame(int fd, std::string& payload) {
  return read_frame(fd, payload, 0, 0);
}

void write_frame(int fd, const std::string& payload, std::uint64_t io_ms) {
  if (payload.size() > kMaxFrameBytes)
    throw ServeError("frame exceeds " + std::to_string(kMaxFrameBytes) +
                     " bytes");
  std::size_t len = payload.size();
  // Fault-injection hook. fault::active() is one relaxed atomic load —
  // free when no injector is installed (the production case).
  if (auto* inj = fault::active()) {
    switch (inj->on_frame_send()) {
      case fault::FrameFault::kNone:
        break;
      case fault::FrameFault::kDrop:
        return;  // frame silently lost; the stream stays in sync
      case fault::FrameFault::kDelay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(inj->plan().frame_delay_ms));
        break;
      case fault::FrameFault::kTruncate: {
        // Announce the full length, send half the bytes, die: exactly
        // what a sender killed mid-send looks like to the peer.
        unsigned char hdr[4];
        frame_header(len, hdr);
        send_all(fd, reinterpret_cast<const char*>(hdr), 4, io_ms);
        send_all(fd, payload.data(), len / 2, io_ms);
        throw ServeError("injected fault: frame truncated mid-send");
      }
    }
  }
  unsigned char hdr[4];
  frame_header(len, hdr);
  send_all(fd, reinterpret_cast<const char*>(hdr), 4, io_ms);
  send_all(fd, payload.data(), len, io_ms);
}

void write_frame(int fd, const std::string& payload) {
  write_frame(fd, payload, 0);
}

void append_frame(std::string& out, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw ServeError("frame exceeds " + std::to_string(kMaxFrameBytes) +
                     " bytes");
  unsigned char hdr[4];
  frame_header(payload.size(), hdr);
  out.append(reinterpret_cast<const char*>(hdr), 4);
  out.append(payload.data(), payload.size());
}

void write_buffer(int fd, std::string_view bytes, std::uint64_t io_ms) {
  send_all(fd, bytes.data(), bytes.size(), io_ms);
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace masc::serve
