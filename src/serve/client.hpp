// Blocking client for the masc-served wire protocol: one TCP
// connection, synchronous request/response frames. Used by masc-client
// and by the in-process service tests; a Client is NOT thread-safe —
// concurrent submitters each open their own (the server is happy to
// hold many sessions).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "serve/protocol.hpp"

namespace masc::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a masc-served instance. Throws ServeError.
  void connect(const std::string& host, std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request payload, return the raw response payload.
  /// Throws ServeError on transport failure (including server close).
  std::string request_raw(const std::string& payload);

  /// As request_raw, with the response parsed. Throws JsonError if the
  /// server returns non-JSON (it never should).
  json::Value request(const std::string& payload);

 private:
  int fd_ = -1;
};

}  // namespace masc::serve
