// Blocking client for the masc-served wire protocol: one TCP
// connection, synchronous request/response frames. Used by masc-client
// and by the in-process service tests; a Client is NOT thread-safe —
// concurrent submitters each open their own (the server is happy to
// hold many sessions).
//
// Resilience: connects honor a timeout, every request can be bounded by
// an I/O timeout, and request_with_retry() layers reconnect-and-retry
// with jittered exponential backoff on top — honoring the server's
// retry_after_ms hint when a submit bounces off a full queue.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/random.hpp"
#include "serve/protocol.hpp"
#include "serve/protocol_v2.hpp"

namespace masc::serve {

/// Retry schedule for request_with_retry(). Delays are computed by
/// backoff_delay_ms(); `max_attempts` counts the first try.
struct RetryPolicy {
  unsigned max_attempts = 1;       ///< 1 = no retries
  std::uint64_t base_ms = 100;     ///< first retry delay scale
  std::uint64_t max_ms = 5'000;    ///< exponential growth cap
  std::uint64_t seed = 0;          ///< jitter stream seed
};

/// Delay before retry number `attempt` (0-based): exponential growth
/// base_ms·2^attempt capped at max_ms, jittered uniformly into
/// [cap/2, cap] to decorrelate clients, then floored by the server's
/// retry_after_ms hint (0 = no hint). Pure given the Rng state, so the
/// backoff-timing test can check spacing without sleeping.
std::uint64_t backoff_delay_ms(const RetryPolicy& policy, unsigned attempt,
                               std::uint64_t hint_ms, Rng& rng);

class ClientPool;

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a masc-served instance, waiting at most `timeout_ms`
  /// (0 = OS default) for the TCP handshake. Throws ServeError (or
  /// ServeTimeout when the deadline expires). The target is remembered
  /// for request_with_retry() reconnects.
  void connect(const std::string& host, std::uint16_t port,
               std::uint64_t timeout_ms = 0);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Bound each subsequent request's socket reads/writes (0 = none).
  void set_io_timeout_ms(std::uint64_t ms) { io_timeout_ms_ = ms; }

  /// Send one request payload, return the raw response payload.
  /// Throws ServeError on transport failure (including server close)
  /// and ServeTimeout when the I/O timeout expires.
  std::string request_raw(const std::string& payload);

  /// As request_raw, with the response parsed. Throws JsonError if the
  /// server returns non-JSON (it never should).
  json::Value request(const std::string& payload);

  /// request() with recovery: on transport failure the connection is
  /// reopened and the request resent; a {"error":"queue_full"} response
  /// is retried after its retry_after_ms hint. Sleeps backoff_delay_ms()
  /// between attempts. Throws the last transport error once the policy
  /// is exhausted. NOTE: resending is safe for idempotent requests
  /// (everything but an un-keyed "submit"); give submits a "key".
  json::Value request_with_retry(const std::string& payload,
                                 const RetryPolicy& policy);

  // --- Protocol v2 (serve/protocol_v2.hpp, docs/NET.md) --------------------

  /// Negotiate the wire protocol via the v1 `hello` op and remember the
  /// result. Returns the agreed version: 2 against a v2-capable server,
  /// 1 against an older one (whose unknown_op error is swallowed — the
  /// connection stays usable for v1). Throws only on transport failure.
  unsigned negotiate(unsigned max_version = 2);
  /// The negotiated version: 1 until negotiate() succeeds with 2.
  unsigned protocol() const { return protocol_; }
  /// True once negotiate() ran on this connection (either outcome) —
  /// lets a pool skip re-negotiating a reused connection.
  bool negotiated() const { return negotiated_; }

  /// Pipelining primitives: queue one v2 request frame (returns its
  /// request id) / read one v2 response frame, in server completion
  /// order. Any number of requests may be in flight; match responses to
  /// requests by V2Response::request_id. Loop-free code that wants one
  /// round-trip can use request_v2() below.
  struct V2Response {
    v2::Op op;
    std::uint32_t request_id = 0;
    bool ok = false;
    std::string body;  ///< v1 JSON response bytes, or cache_get body
  };
  std::uint32_t send_v2(v2::Op op, std::string_view body);
  V2Response recv_v2();

  /// Batch pipelined sends: while enabled, send_v2 appends frames to an
  /// outbound buffer instead of hitting the socket, and the buffer is
  /// flushed in one send by recv_v2()/flush_v2() (or when it grows past
  /// an internal bound). Turns a 64-deep pipeline from 64 syscalls into
  /// one on each side — the difference BM_ServeHit measures. Off by
  /// default; sticky across reconnects. While a fault injector is
  /// active, sends fall back to per-frame write_frame so injected
  /// drops/truncations keep their exact semantics.
  void set_pipelining(bool on);
  bool pipelining() const { return pipelining_; }
  /// Flush any batched-but-unsent request frames now.
  void flush_v2();

  /// One v2 round-trip for a JSON-bodied op (submit/result/stats): body
  /// is the v1 request JSON, the parsed v1 response comes back. Must
  /// not be called with other requests in flight.
  json::Value request_v2(v2::Op op, const std::string& body);

  /// One binary cache_get round-trip: true plus the encoded cache
  /// record on a hit. Must not be called with other requests in flight.
  bool cache_get_v2(const Hash128& key, std::string* record);

 private:
  /// Buffered frame reader shared by every response path: recv() in
  /// large chunks, carve frames out of rbuf_. Over-reading is safe —
  /// the surplus belongs to later responses on this same connection.
  bool read_frame_buffered(std::string& payload);
  bool fill_rbuf();  ///< one timed recv; false on clean peer close

  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
  std::uint64_t connect_timeout_ms_ = 0;
  std::uint64_t io_timeout_ms_ = 0;
  unsigned protocol_ = 1;          ///< negotiated wire version
  bool negotiated_ = false;        ///< hello already exchanged
  bool pipelining_ = false;        ///< batch send_v2 frames (flush_v2)
  std::uint32_t next_request_id_ = 1;
  std::string obuf_;               ///< framed requests awaiting one send
  std::string rbuf_;               ///< inbound bytes awaiting extraction
  std::size_t rpos_ = 0;           ///< parse cursor into rbuf_
  Rng retry_rng_{0x6d617363'72747279ULL};  // jitter stream; see RetryPolicy
};

/// Reusable connections to many endpoints. A Client is single-threaded,
/// but a process that talks to a whole fleet (masc-routerd, fan-out
/// tests) wants to amortize TCP handshakes across requests and
/// sessions: acquire() hands out an idle connection to "host:port" —
/// opening a fresh one only when none is parked — and release() parks
/// it again for the next caller. Thread-safe; the handed-out Client
/// itself is used by one thread at a time as usual.
///
/// Broken connections are simply not release()d (or are release()d
/// closed, which drops them), so the pool never resurrects a socket
/// that already failed mid-request.
class ClientPool {
 public:
  /// Budgets applied to every connection the pool opens.
  explicit ClientPool(std::uint64_t connect_timeout_ms = 0,
                      std::uint64_t io_timeout_ms = 0)
      : connect_timeout_ms_(connect_timeout_ms),
        io_timeout_ms_(io_timeout_ms) {}

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// An idle pooled connection to the endpoint, or a freshly connected
  /// one. Throws ServeError/ServeTimeout when a fresh connect fails.
  Client acquire(const std::string& host, std::uint16_t port);

  /// Park a still-usable connection for reuse. Disconnected clients are
  /// silently dropped. At most `kMaxIdlePerEndpoint` are kept per
  /// endpoint; extras are closed.
  void release(const std::string& host, std::uint16_t port, Client client);

  /// Drop every idle connection (e.g. after an endpoint was observed
  /// down, so no caller inherits a half-dead socket).
  void clear(const std::string& host, std::uint16_t port);

  std::size_t idle_count() const;

  static constexpr std::size_t kMaxIdlePerEndpoint = 8;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Client>> idle_;  ///< "host:port" → parked
  std::uint64_t connect_timeout_ms_;
  std::uint64_t io_timeout_ms_;
};

/// RAII lease on a pooled connection: returns the client to the pool on
/// destruction unless discard()ed (the response path discards leases
/// whose request threw — the socket state is unknown).
class PooledClient {
 public:
  PooledClient(ClientPool& pool, const std::string& host, std::uint16_t port)
      : pool_(&pool), host_(host), port_(port),
        client_(pool.acquire(host, port)) {}
  ~PooledClient() {
    if (pool_ && !discarded_) pool_->release(host_, port_, std::move(client_));
  }
  PooledClient(const PooledClient&) = delete;
  PooledClient& operator=(const PooledClient&) = delete;

  Client& operator*() { return client_; }
  Client* operator->() { return &client_; }
  void discard() { discarded_ = true; }

 private:
  ClientPool* pool_;
  std::string host_;
  std::uint16_t port_;
  Client client_;
  bool discarded_ = false;
};

}  // namespace masc::serve
