#include "serve/protocol.hpp"

#include "ascal/codegen.hpp"
#include "assembler/assembler.hpp"
#include "common/error.hpp"

namespace masc::serve {

MachineConfig config_from_json(const json::Value& v) {
  if (!v.is_object()) throw JsonError("\"config\" must be an object");
  MachineConfig cfg;
  cfg.num_pes = static_cast<std::uint32_t>(v.get_uint("pes", cfg.num_pes));
  cfg.num_threads =
      static_cast<std::uint32_t>(v.get_uint("threads", cfg.num_threads));
  cfg.word_width = static_cast<unsigned>(v.get_uint("width", cfg.word_width));
  cfg.broadcast_arity =
      static_cast<std::uint32_t>(v.get_uint("arity", cfg.broadcast_arity));
  cfg.issue_width =
      static_cast<std::uint32_t>(v.get_uint("issue_width", cfg.issue_width));
  cfg.switch_penalty = static_cast<std::uint32_t>(
      v.get_uint("switch_penalty", cfg.switch_penalty));
  cfg.multithreading = v.get_bool("multithreading", cfg.multithreading);
  cfg.pipelined_network =
      v.get_bool("pipelined_network", cfg.pipelined_network);
  cfg.pipelined_execution =
      v.get_bool("pipelined_execution", cfg.pipelined_execution);
  const std::string sched = v.get_string("sched", "fine");
  if (sched == "fine") cfg.sched_policy = ThreadSchedPolicy::kFineGrain;
  else if (sched == "coarse") cfg.sched_policy = ThreadSchedPolicy::kCoarseGrain;
  else if (sched == "smt") cfg.sched_policy = ThreadSchedPolicy::kSmt;
  else throw JsonError("unknown sched policy \"" + sched + "\"");
  // Host-execution knob, not architectural: never hashed into cache keys
  // or config identity (docs/THREADING.md).
  cfg.sim_threads =
      static_cast<std::uint32_t>(v.get_uint("sim_threads", cfg.sim_threads));
  cfg.validate();
  return cfg;
}

Program program_from_json(const json::Value& v) {
  if (!v.is_object()) throw JsonError("\"program\" must be an object");
  if (const json::Value* src = v.find("source")) return assemble(src->as_string());
  if (const json::Value* src = v.find("ascal"))
    return assemble(ascal::compile(src->as_string()).assembly);
  const json::Value* text = v.find("text");
  if (!text)
    throw JsonError("program needs \"source\", \"ascal\", or \"text\"");
  Program prog;
  prog.text.reserve(text->as_array().size());
  for (const auto& w : text->as_array())
    prog.text.push_back(static_cast<InstrWord>(w.as_uint()));
  if (const json::Value* data = v.find("data")) {
    prog.data.reserve(data->as_array().size());
    for (const auto& w : data->as_array())
      prog.data.push_back(static_cast<Word>(w.as_uint()));
  }
  prog.entry = static_cast<Addr>(v.get_uint("entry", 0));
  return prog;
}

SweepJob job_from_json(const json::Value& v) {
  if (!v.is_object()) throw JsonError("job must be an object");
  SweepJob job;
  if (const json::Value* cfg = v.find("config"))
    job.cfg = config_from_json(*cfg);
  else
    job.cfg.validate();
  const json::Value* prog = v.find("program");
  if (!prog) throw JsonError("job needs a \"program\"");
  job.program = program_from_json(*prog);
  job.label = v.get_string("label", job.cfg.name());
  job.seed = v.get_uint("seed", 0);
  job.max_cycles = v.get_uint("max_cycles", job.max_cycles);
  // Host-execution knob like "sim_threads": 0 inherits the server's
  // --batch-lanes default, 1 forces serial; never part of cache keys.
  job.batch_lanes =
      static_cast<std::uint32_t>(v.get_uint("batch_lanes", job.batch_lanes));
  return job;
}

}  // namespace masc::serve
