#include "serve/protocol_v2.hpp"

namespace masc::serve::v2 {

namespace {

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint64_t>(p[i]);
  return v;
}

}  // namespace

std::string encode(Op op, Kind kind, std::uint32_t request_id,
                   std::string_view body) {
  std::string out;
  out.reserve(kHeaderBytes + body.size());
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(op));
  out.push_back(static_cast<char>(kind));
  put_u32le(out, request_id);
  out.append(body.data(), body.size());
  return out;
}

Frame decode(std::string_view payload) {
  if (payload.size() < kHeaderBytes)
    throw V2Error("bad_frame", "v2 header truncated", /*is_fatal=*/true, 0);
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  const std::uint32_t id = get_u32le(p + 4);
  if (p[0] != kMagic)
    throw V2Error("bad_frame", "bad v2 magic", /*is_fatal=*/true, 0);
  if (p[1] != kVersion)
    throw V2Error("bad_version",
                  "unsupported protocol version " + std::to_string(p[1]),
                  /*is_fatal=*/false, id);
  if (p[3] > 2)
    throw V2Error("bad_frame", "unknown v2 message kind",
                  /*is_fatal=*/false, id);
  // Error frames echo the offending request's op byte verbatim — which
  // may be exactly what was wrong with it — so only validate the op
  // range on request/ok frames.
  if ((p[2] < 1 || p[2] > 4) && p[3] != static_cast<unsigned char>(Kind::kError))
    throw V2Error("unknown_op", "unknown v2 op " + std::to_string(p[2]),
                  /*is_fatal=*/false, id);
  Frame f;
  f.op = static_cast<Op>(p[2]);
  f.kind = static_cast<Kind>(p[3]);
  f.request_id = id;
  f.body = payload.substr(kHeaderBytes);
  return f;
}

std::string encode_cache_get_request(std::uint32_t request_id,
                                     const Hash128& key) {
  std::string body;
  body.reserve(16);
  put_u64le(body, key.hi);
  put_u64le(body, key.lo);
  return encode(Op::kCacheGet, Kind::kRequest, request_id, body);
}

Hash128 decode_cache_get_key(std::string_view body,
                             std::uint32_t request_id) {
  if (body.size() != 16)
    throw V2Error("bad_request", "cache_get body must be 16 key bytes",
                  /*is_fatal=*/false, request_id);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(body.data());
  Hash128 key;
  key.hi = get_u64le(p);
  key.lo = get_u64le(p + 8);
  return key;
}

std::string encode_cache_get_hit(std::uint32_t request_id,
                                 std::string_view record) {
  std::string body;
  body.reserve(1 + record.size());
  body.push_back(static_cast<char>(1));
  body.append(record.data(), record.size());
  return encode(Op::kCacheGet, Kind::kOk, request_id, body);
}

std::string encode_cache_get_miss(std::uint32_t request_id) {
  std::string body(1, static_cast<char>(0));
  return encode(Op::kCacheGet, Kind::kOk, request_id, body);
}

bool decode_cache_get_response(std::string_view body,
                               std::uint32_t request_id, std::string* record) {
  if (body.empty())
    throw V2Error("bad_frame", "cache_get response body empty",
                  /*is_fatal=*/false, request_id);
  if (body[0] == 0) return false;
  if (record) record->assign(body.data() + 1, body.size() - 1);
  return true;
}

}  // namespace masc::serve::v2
