// Protocol v2: the negotiated binary envelope for the hot wire ops
// (docs/NET.md "Protocol v2").
//
// A v2 message still travels inside the ordinary 4-byte big-endian
// outer length framing from serve/framing.hpp — v2 changes the payload,
// not the transport — so every existing frame reader, fault injector,
// and size cap keeps working unchanged. Inside the payload:
//
//   offset  size  field
//   0       1     magic 0xB2 (never a JSON start byte; '{' = 0x7B
//                 means the payload is a v1 JSON message)
//   1       1     version (2)
//   2       1     op: 1 submit, 2 result, 3 stats, 4 cache_get
//   3       1     kind: 0 request, 1 ok-response, 2 error-response
//   4       4     request id, little-endian (echoed in the response;
//                 responses to pipelined requests may arrive out of
//                 order and are matched by this id)
//   8       ...   body (op-specific, see below)
//
// Bodies are raw blobs, never base64:
//   submit/result/stats request  — the v1 JSON request object, verbatim
//   submit/result/stats ok       — the v1 JSON response, verbatim
//                                  (bit-identical to what the same
//                                  request would get over v1)
//   any error-response           — the v1 error JSON, verbatim
//   cache_get request            — 16 bytes: key.hi u64le, key.lo u64le
//   cache_get ok                 — 1 byte found (0/1), then the encoded
//                                  cache record bytes when found
//
// Negotiation: a client sends the v1 JSON op `hello` listing the
// versions it speaks; the server answers with the highest version both
// sides share. The server accepts v2 frames at any time regardless
// (frames are self-describing by first byte); hello exists so a client
// can discover whether v2 is safe to send. Unknown ops / versions
// produce an in-band error, never a dropped connection — only a
// malformed header (shorter than 8 bytes) drops it, because the stream
// can no longer be trusted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.hpp"
#include "serve/framing.hpp"

namespace masc::serve::v2 {

inline constexpr unsigned char kMagic = 0xB2;
inline constexpr std::uint8_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 8;

enum class Op : std::uint8_t {
  kSubmit = 1,
  kResult = 2,
  kStats = 3,
  kCacheGet = 4,
};

enum class Kind : std::uint8_t {
  kRequest = 0,
  kOk = 1,
  kError = 2,
};

/// Decoded view of one v2 message; `body` aliases the source payload.
struct Frame {
  Op op;
  Kind kind;
  std::uint32_t request_id;
  std::string_view body;
};

/// Raised by decode() on a payload that starts with kMagic but cannot
/// be accepted. `fatal` means the header itself was malformed and the
/// connection should be dropped; otherwise the peer deserves an in-band
/// error response carrying `code` and echoing `request_id` (0 when the
/// id was unreadable).
class V2Error : public ServeError {
 public:
  V2Error(std::string code, const std::string& detail, bool is_fatal,
          std::uint32_t id)
      : ServeError(detail), code_(std::move(code)), fatal_(is_fatal),
        request_id_(id) {}
  const std::string& code() const { return code_; }
  bool fatal() const { return fatal_; }
  std::uint32_t request_id() const { return request_id_; }

 private:
  std::string code_;
  bool fatal_;
  std::uint32_t request_id_;
};

/// First-byte discrimination: does this payload carry a v2 header?
inline bool is_v2(std::string_view payload) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == kMagic;
}

/// Build one v2 message (header + body).
std::string encode(Op op, Kind kind, std::uint32_t request_id,
                   std::string_view body);

/// Parse and validate a v2 header. Throws V2Error (see above). Only
/// call after is_v2() returned true.
Frame decode(std::string_view payload);

// --- cache_get bodies (the fully binary op) --------------------------------

std::string encode_cache_get_request(std::uint32_t request_id,
                                     const Hash128& key);
/// Throws V2Error (non-fatal) when the body is not exactly 16 bytes.
Hash128 decode_cache_get_key(std::string_view body, std::uint32_t request_id);

std::string encode_cache_get_hit(std::uint32_t request_id,
                                 std::string_view record);
std::string encode_cache_get_miss(std::uint32_t request_id);
/// Returns true (and fills `record`) on a hit body, false on a miss
/// body; throws V2Error on an empty/garbled body.
bool decode_cache_get_response(std::string_view body, std::uint32_t request_id,
                               std::string* record);

/// Both daemons generate success bodies starting `{"ok":true` and error
/// bodies starting `{"ok":false`; this classifies a v1 response string
/// so it can be wrapped in the right v2 response kind.
inline bool is_error_body(std::string_view v1_response) {
  return v1_response.rfind("{\"ok\":false", 0) == 0;
}

}  // namespace masc::serve::v2
