// Wire protocol of the MASC simulation service.
//
// Transport: TCP on localhost. Every message — request or response — is
// one *frame*: a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. Requests are objects with an "op" member;
// responses are objects with an "ok" member (and "error" when !ok).
// The full request/response schema is documented in docs/SERVER.md.
//
// This header carries the pieces shared by server, client, and tests:
// frame I/O over a socket fd, the frame size cap, and the JSON →
// simulator-object decoders (MachineConfig, Program, SweepJob).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "sim/sweep.hpp"

namespace masc::serve {

/// Raised for socket-level failures (bind, connect, framing).
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by the timed frame I/O below when the peer stays silent past
/// the deadline. A subclass so callers can treat "slow" differently
/// from "broken" (the server reaps idle sessions on it; the client
/// retries on it).
class ServeTimeout : public ServeError {
 public:
  using ServeError::ServeError;
};

/// Hard cap on one frame's payload. Large enough for a program image of
/// several hundred thousand words plus data; small enough that a bad
/// client cannot make the server allocate gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Read one length-prefixed frame into `payload`. Returns false on a
/// clean peer close before any length byte; throws ServeError on a
/// truncated frame, an I/O error, or a length above kMaxFrameBytes.
bool read_frame(int fd, std::string& payload);

/// Write one length-prefixed frame. Throws ServeError on I/O failure
/// (including peer reset) or payloads above kMaxFrameBytes.
void write_frame(int fd, const std::string& payload);

/// Timed variant of read_frame: wait up to `first_ms` for the frame to
/// begin (the idle budget between requests) and up to `io_ms` for each
/// subsequent chunk once it has (a stalled mid-frame peer). Either 0
/// waits forever. Throws ServeTimeout when a budget expires.
bool read_frame(int fd, std::string& payload, std::uint64_t first_ms,
                std::uint64_t io_ms);

/// Timed variant of write_frame: wait up to `io_ms` (0 = forever) for
/// the socket to accept each chunk. Throws ServeTimeout on expiry.
///
/// Both write_frame overloads are the injection point for frame faults
/// (fault/fault.hpp): an installed FaultInjector can silently drop the
/// frame, delay it, or truncate it mid-payload (the truncation throws
/// ServeError, modelling a sender that died mid-send).
void write_frame(int fd, const std::string& payload, std::uint64_t io_ms);

/// Decode a machine configuration object. Recognized members (all
/// optional, defaults = MachineConfig defaults): "pes", "threads",
/// "width", "arity", "issue_width", "switch_penalty", "multithreading",
/// "pipelined_network", "pipelined_execution", "sched" =
/// "fine"|"coarse"|"smt". The result is validate()d; throws ConfigError
/// or JsonError.
MachineConfig config_from_json(const json::Value& v);

/// Decode a program: {"source": "<asm>"} assembles MASC assembly,
/// {"ascal": "<src>"} compiles ASCAL, {"text": [u32...], "data":
/// [u32...], "entry": n} loads a pre-assembled image. Throws
/// AssemblyError / ascal::CompileError / JsonError.
Program program_from_json(const json::Value& v);

/// Decode one job object: "config" (object), "program" (object),
/// "label", "seed", "max_cycles". Deadline and cancellation are
/// attached by the server (they need the submission timestamp).
SweepJob job_from_json(const json::Value& v);

}  // namespace masc::serve
