// Wire protocol of the MASC simulation service.
//
// Transport: TCP on localhost. Every message — request or response — is
// one *frame*: a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON (serve/framing.hpp owns the frame I/O). Requests
// are objects with an "op" member; responses are objects with an "ok"
// member (and "error" when !ok). The full request/response schema is
// documented in docs/SERVER.md; the cluster router speaks the same
// protocol on both faces (docs/CLUSTER.md).
//
// This header carries the pieces shared by server, client, router, and
// tests: the transport layer (re-exported from framing.hpp so existing
// includes keep working) and the JSON → simulator-object decoders
// (MachineConfig, Program, SweepJob).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "serve/framing.hpp"
#include "sim/sweep.hpp"

namespace masc::serve {

/// Decode a machine configuration object. Recognized members (all
/// optional, defaults = MachineConfig defaults): "pes", "threads",
/// "width", "arity", "issue_width", "switch_penalty", "multithreading",
/// "pipelined_network", "pipelined_execution", "sched" =
/// "fine"|"coarse"|"smt". The result is validate()d; throws ConfigError
/// or JsonError.
MachineConfig config_from_json(const json::Value& v);

/// Decode a program: {"source": "<asm>"} assembles MASC assembly,
/// {"ascal": "<src>"} compiles ASCAL, {"text": [u32...], "data":
/// [u32...], "entry": n} loads a pre-assembled image. Throws
/// AssemblyError / ascal::CompileError / JsonError.
Program program_from_json(const json::Value& v);

/// Decode one job object: "config" (object), "program" (object),
/// "label", "seed", "max_cycles", "batch_lanes". Deadline and
/// cancellation are attached by the server (they need the submission
/// timestamp).
SweepJob job_from_json(const json::Value& v);

}  // namespace masc::serve
