// Tokenizer for MASC assembly source.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace masc {

enum class TokKind : std::uint8_t {
  kIdent,      ///< mnemonic, label, register name, directive (leading '.')
  kInt,        ///< integer literal (decimal, 0x hex, 0b binary, 'c' char)
  kComma,
  kColon,
  kLParen,
  kRParen,
  kQuestion,   ///< introduces the ?pfN mask suffix
  kNewline,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;        ///< identifier spelling
  std::int64_t value = 0;  ///< integer value for kInt
  unsigned line = 0;
  unsigned col = 0;
};

/// Tokenize a full source buffer. Throws AssemblyError on malformed
/// literals or stray characters, with line/column in the message.
std::vector<Token> tokenize(const std::string& source);

}  // namespace masc
