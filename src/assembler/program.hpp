// Assembled program image.
//
// Memories are word-addressed throughout the MASC ISA: each address in
// instruction memory holds one 32-bit instruction; each address in scalar
// or PE-local data memory holds one machine word. This keeps the ISA
// independent of the configured word width.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace masc {

struct Program {
  std::vector<InstrWord> text;   ///< instruction memory image (word 0 = PC 0)
  std::vector<Word> data;        ///< scalar data memory image, from address 0
  Addr entry = 0;                ///< initial PC of thread 0
  std::map<std::string, std::int64_t> symbols;  ///< labels and .equ constants

  /// Address of a label/constant; throws AssemblyError if undefined.
  std::int64_t symbol(const std::string& name) const;
};

}  // namespace masc
