#include "assembler/assembler.hpp"

#include <map>
#include <optional>
#include <vector>

#include "assembler/lexer.hpp"
#include "common/error.hpp"
#include "isa/encoding.hpp"

namespace masc {

namespace {

// How an unresolved symbol patches into an instruction's imm field.
enum class FixupKind : std::uint8_t {
  kNone,
  kAbsolute,   ///< imm <- symbol value (j/jal targets, li/la low half)
  kRelative,   ///< imm <- symbol - (addr + 1) (branch offsets)
  kHigh16,     ///< imm <- (symbol >> 16) & 0xFFFF (lui half of la)
  kLow16,      ///< imm <- symbol & 0xFFFF (ori half of la)
};

struct PendingInstr {
  Instruction instr;
  FixupKind fixup = FixupKind::kNone;
  std::string symbol;
  Addr addr = 0;      ///< text address of this instruction
  unsigned line = 0;  ///< for error reporting
};

struct PendingDatum {
  Addr addr = 0;
  std::int64_t literal = 0;
  std::string symbol;  ///< non-empty if the word is a symbol reference
  unsigned line = 0;
};

class Assembler {
 public:
  explicit Assembler(const std::string& source) : toks_(tokenize(source)) {}

  Program run() {
    while (!at(TokKind::kEnd)) statement();
    return finalize();
  }

 private:
  // ---- token helpers ------------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }
  Token take() { return toks_[pos_++]; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw AssemblyError("line " + std::to_string(cur().line) + ": " + msg);
  }

  Token expect(TokKind k, const char* what) {
    if (!at(k)) fail(std::string("expected ") + what);
    return take();
  }

  void comma() { expect(TokKind::kComma, "','"); }

  void end_statement() {
    if (at(TokKind::kEnd)) return;
    expect(TokKind::kNewline, "end of statement");
  }

  // ---- operand parsers ----------------------------------------------------
  RegNum reg(char prefix, const char* what, RegNum limit = 32) {
    const Token t = expect(TokKind::kIdent, what);
    const std::string& s = t.text;
    std::size_t digits_at = 1;
    bool ok = s.size() >= 2 && s[0] == prefix;
    if (prefix == 'F') {  // 'F' selects the two-letter prefixes sf / pf
      ok = s.size() >= 3 && (s[0] == 's' || s[0] == 'p') && s[1] == 'f';
      digits_at = 2;
    }
    if (!ok) fail(std::string("expected ") + what + ", got '" + s + "'");
    RegNum n = 0;
    for (std::size_t i = digits_at; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9')
        fail(std::string("malformed register '") + s + "'");
      n = n * 10 + static_cast<RegNum>(s[i] - '0');
    }
    if (n >= limit) fail("register number out of range: '" + s + "'");
    return n;
  }

  RegNum sreg() { return reg('r', "scalar register rN"); }
  RegNum preg() { return reg('p', "parallel register pN"); }

  RegNum sflag() {
    const Token& t = cur();
    if (t.kind != TokKind::kIdent || t.text.size() < 3 || t.text[0] != 's' || t.text[1] != 'f')
      fail("expected scalar flag sfN");
    return reg('F', "scalar flag sfN", 8);
  }

  RegNum pflag() {
    const Token& t = cur();
    if (t.kind != TokKind::kIdent || t.text.size() < 3 || t.text[0] != 'p' || t.text[1] != 'f')
      fail("expected parallel flag pfN");
    return reg('F', "parallel flag pfN", 8);
  }

  /// An immediate operand: integer literal or symbol reference.
  struct Imm {
    std::int64_t value = 0;
    std::string symbol;  ///< non-empty = unresolved
  };

  Imm immediate() {
    if (at(TokKind::kInt)) return Imm{take().value, {}};
    if (at(TokKind::kIdent)) {
      const std::string name = take().text;
      if (auto it = equs_.find(name); it != equs_.end()) return Imm{it->second, {}};
      return Imm{0, name};
    }
    fail("expected immediate or symbol");
  }

  /// Optional trailing mask: "?pfN".
  RegNum opt_mask() {
    if (!at(TokKind::kQuestion)) return 0;
    take();
    return pflag();
  }

  // ---- emission -----------------------------------------------------------
  void emit(Instruction i, FixupKind fx = FixupKind::kNone, std::string sym = {}) {
    PendingInstr p;
    p.instr = i;
    p.fixup = fx;
    p.symbol = std::move(sym);
    p.addr = text_loc_;
    p.line = cur().line;
    instrs_.push_back(std::move(p));
    ++text_loc_;
  }

  void emit_imm(Instruction templ, const Imm& v, FixupKind fx) {
    if (v.symbol.empty()) {
      templ.imm = static_cast<std::int32_t>(v.value);
      emit(templ);
    } else {
      emit(templ, fx, v.symbol);
    }
  }

  // ---- statements ---------------------------------------------------------
  void statement() {
    if (at(TokKind::kNewline)) { take(); return; }
    Token t = expect(TokKind::kIdent, "label, directive, or mnemonic");
    // Labels (possibly several on one line).
    while (at(TokKind::kColon)) {
      take();
      define_symbol(t.text, in_text_ ? text_loc_ : data_loc_);
      if (at(TokKind::kNewline) || at(TokKind::kEnd)) { end_statement(); return; }
      t = expect(TokKind::kIdent, "directive or mnemonic");
    }
    if (t.text[0] == '.') directive(t.text);
    else instruction(t.text);
    end_statement();
  }

  void define_symbol(const std::string& name, std::int64_t value) {
    if (!symbols_.emplace(name, value).second)
      fail("duplicate symbol '" + name + "'");
  }

  void directive(const std::string& d) {
    if (d == ".text") { in_text_ = true; return; }
    if (d == ".data") { in_text_ = false; return; }
    if (d == ".entry") {
      const Token t = expect(TokKind::kIdent, "entry label");
      entry_symbol_ = t.text;
      return;
    }
    if (d == ".equ") {
      const Token name = expect(TokKind::kIdent, "constant name");
      comma();
      const Imm v = immediate();
      if (!v.symbol.empty()) fail(".equ value must be a resolved constant");
      equs_[name.text] = v.value;
      define_symbol(name.text, v.value);
      return;
    }
    if (d == ".org") {
      const Imm v = immediate();
      if (!v.symbol.empty()) fail(".org requires a constant");
      Addr& loc = in_text_ ? text_loc_ : data_loc_;
      if (v.value < loc) fail(".org may not move backwards");
      loc = static_cast<Addr>(v.value);
      return;
    }
    if (d == ".word") {
      if (in_text_) fail(".word only allowed in the data segment");
      for (;;) {
        const Imm v = immediate();
        data_.push_back(PendingDatum{data_loc_, v.value, v.symbol, cur().line});
        ++data_loc_;
        if (!at(TokKind::kComma)) break;
        take();
      }
      return;
    }
    if (d == ".space") {
      if (in_text_) fail(".space only allowed in the data segment");
      const Imm v = immediate();
      if (!v.symbol.empty() || v.value < 0) fail(".space requires a non-negative constant");
      data_loc_ += static_cast<Addr>(v.value);
      return;
    }
    fail("unknown directive '" + d + "'");
  }

  void instruction(const std::string& m);

  // ---- finalization -------------------------------------------------------
  std::int64_t resolve(const std::string& sym, unsigned line) const {
    const auto it = symbols_.find(sym);
    if (it == symbols_.end())
      throw AssemblyError("line " + std::to_string(line) +
                          ": undefined symbol '" + sym + "'");
    return it->second;
  }

  Program finalize() {
    Program prog;
    prog.symbols = symbols_;
    for (auto& p : instrs_) {
      if (p.fixup != FixupKind::kNone) {
        const std::int64_t v = resolve(p.symbol, p.line);
        std::int64_t imm = 0;
        switch (p.fixup) {
          case FixupKind::kAbsolute: imm = v; break;
          case FixupKind::kRelative: imm = v - (static_cast<std::int64_t>(p.addr) + 1); break;
          case FixupKind::kHigh16: imm = (v >> 16) & 0xFFFF; break;
          case FixupKind::kLow16: imm = v & 0xFFFF; break;
          case FixupKind::kNone: break;
        }
        // kLow16 may produce values >= 0x8000 that don't fit a *signed*
        // imm16 field; they are bit patterns, so wrap them.
        if (p.fixup == FixupKind::kLow16 || p.fixup == FixupKind::kHigh16) {
          if (imm >= 0x8000) imm -= 0x10000;
        }
        if (imm < -32768 || imm > 32767)
          throw AssemblyError("line " + std::to_string(p.line) +
                              ": symbol '" + p.symbol +
                              "' out of range for immediate field");
        p.instr.imm = static_cast<std::int32_t>(imm);
      }
      if (p.addr >= prog.text.size()) prog.text.resize(p.addr + 1, encode(ir::nop()));
      try {
        prog.text[p.addr] = encode(p.instr);
      } catch (const DecodeError& e) {
        throw AssemblyError("line " + std::to_string(p.line) + ": " + e.what());
      }
    }
    for (const auto& dval : data_) {
      if (dval.addr >= prog.data.size()) prog.data.resize(dval.addr + 1, 0);
      const std::int64_t v =
          dval.symbol.empty() ? dval.literal : resolve(dval.symbol, dval.line);
      prog.data[dval.addr] = static_cast<Word>(static_cast<std::uint64_t>(v));
    }
    if (data_loc_ > prog.data.size()) prog.data.resize(data_loc_, 0);
    if (!entry_symbol_.empty())
      prog.entry = static_cast<Addr>(resolve(entry_symbol_, 0));
    else if (auto it = symbols_.find("main"); it != symbols_.end())
      prog.entry = static_cast<Addr>(it->second);
    return prog;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  bool in_text_ = true;
  Addr text_loc_ = 0;
  Addr data_loc_ = 0;
  std::map<std::string, std::int64_t> symbols_;
  std::map<std::string, std::int64_t> equs_;
  std::string entry_symbol_;
  std::vector<PendingInstr> instrs_;
  std::vector<PendingDatum> data_;
};

// ---- mnemonic tables -------------------------------------------------------

const std::map<std::string, AluFunct> kAlu3 = {
    {"add", AluFunct::kAdd}, {"sub", AluFunct::kSub}, {"and", AluFunct::kAnd},
    {"or", AluFunct::kOr},   {"xor", AluFunct::kXor}, {"nor", AluFunct::kNor},
    {"sll", AluFunct::kSll}, {"srl", AluFunct::kSrl}, {"sra", AluFunct::kSra},
    {"slt", AluFunct::kSlt}, {"sltu", AluFunct::kSltu},
    {"mul", AluFunct::kMul}, {"div", AluFunct::kDiv}, {"rem", AluFunct::kRem},
    {"divu", AluFunct::kDivU}, {"remu", AluFunct::kRemU},
};

const std::map<std::string, CmpFunct> kCmp = {
    {"eq", CmpFunct::kEq},   {"ne", CmpFunct::kNe},  {"lt", CmpFunct::kLt},
    {"le", CmpFunct::kLe},   {"ltu", CmpFunct::kLtu}, {"leu", CmpFunct::kLeu},
    {"gt", CmpFunct::kGt},   {"ge", CmpFunct::kGe},  {"gtu", CmpFunct::kGtu},
    {"geu", CmpFunct::kGeu},
};

const std::map<std::string, Opcode> kImmOps = {
    {"addi", Opcode::kAddi}, {"andi", Opcode::kAndi}, {"ori", Opcode::kOri},
    {"xori", Opcode::kXori}, {"slti", Opcode::kSlti}, {"sltiu", Opcode::kSltiu},
    {"slli", Opcode::kSlli}, {"srli", Opcode::kSrli}, {"srai", Opcode::kSrai},
};

const std::map<std::string, Opcode> kBranches = {
    {"beq", Opcode::kBeq},   {"bne", Opcode::kBne},  {"blt", Opcode::kBlt},
    {"bge", Opcode::kBge},   {"bltu", Opcode::kBltu}, {"bgeu", Opcode::kBgeu},
};

// Pseudo-branches that swap their operands onto a real branch.
const std::map<std::string, Opcode> kSwappedBranches = {
    {"bgt", Opcode::kBlt}, {"ble", Opcode::kBge},
    {"bgtu", Opcode::kBltu}, {"bleu", Opcode::kBgeu},
};

const std::map<std::string, PImmOp> kPImms = {
    {"paddi", PImmOp::kAddi}, {"pandi", PImmOp::kAndi}, {"pori", PImmOp::kOri},
    {"pxori", PImmOp::kXori}, {"pslli", PImmOp::kSlli}, {"psrli", PImmOp::kSrli},
    {"psrai", PImmOp::kSrai},
};

const std::map<std::string, RedFunct> kRedWord = {
    {"rand", RedFunct::kAnd},  {"ror", RedFunct::kOr},
    {"rmax", RedFunct::kMax},  {"rmin", RedFunct::kMin},
    {"rmaxu", RedFunct::kMaxU}, {"rminu", RedFunct::kMinU},
    {"rsum", RedFunct::kSum},  {"rsumu", RedFunct::kSumU},
};

const std::map<std::string, FlagFunct> kFlag3 = {
    {"and", FlagFunct::kAnd}, {"or", FlagFunct::kOr},
    {"xor", FlagFunct::kXor}, {"andn", FlagFunct::kAndNot},
};

void Assembler::instruction(const std::string& m) {
  // --- system ---------------------------------------------------------------
  if (m == "nop") { emit(ir::nop()); return; }
  if (m == "halt") { emit(ir::halt()); return; }

  // --- scalar ALU -----------------------------------------------------------
  if (auto it = kAlu3.find(m); it != kAlu3.end()) {
    const RegNum rd = sreg(); comma();
    const RegNum rs = sreg(); comma();
    const RegNum rt = sreg();
    emit(ir::salu(it->second, rd, rs, rt));
    return;
  }
  if (m == "mov") {
    const RegNum rd = sreg(); comma();
    const RegNum rs = sreg();
    emit(ir::salu(AluFunct::kMov, rd, rs, 0));
    return;
  }
  if (m == "neg") {  // pseudo: rd <- 0 - rs
    const RegNum rd = sreg(); comma();
    const RegNum rs = sreg();
    emit(ir::salu(AluFunct::kSub, rd, 0, rs));
    return;
  }
  if (m == "not") {  // pseudo: rd <- ~rs
    const RegNum rd = sreg(); comma();
    const RegNum rs = sreg();
    emit(ir::salu(AluFunct::kNor, rd, rs, 0));
    return;
  }

  // --- scalar compares -> scalar flag ----------------------------------------
  if (m.size() >= 2 && m[0] == 'c' && kCmp.count(m.substr(1))) {
    const RegNum fd = sflag(); comma();
    const RegNum rs = sreg(); comma();
    const RegNum rt = sreg();
    emit(ir::scmp(kCmp.at(m.substr(1)), fd, rs, rt));
    return;
  }

  // --- scalar flag logic ------------------------------------------------------
  if (m.size() > 2 && m[0] == 's' && m[1] == 'f') {
    const std::string op = m.substr(2);
    if (auto it = kFlag3.find(op); it != kFlag3.end()) {
      const RegNum fd = sflag(); comma();
      const RegNum fs = sflag(); comma();
      const RegNum ft = sflag();
      emit(ir::sflag(it->second, fd, fs, ft));
      return;
    }
    if (op == "not" || op == "mov") {
      const RegNum fd = sflag(); comma();
      const RegNum fs = sflag();
      emit(ir::sflag(op == "not" ? FlagFunct::kNot : FlagFunct::kMov, fd, fs, 0));
      return;
    }
    if (op == "set" || op == "clr") {
      const RegNum fd = sflag();
      emit(ir::sflag(op == "set" ? FlagFunct::kSet : FlagFunct::kClr, fd, 0, 0));
      return;
    }
  }

  // --- scalar immediates ------------------------------------------------------
  if (auto it = kImmOps.find(m); it != kImmOps.end()) {
    const RegNum rd = sreg(); comma();
    const RegNum rs = sreg(); comma();
    const Imm v = immediate();
    emit_imm(ir::imm_op(it->second, rd, rs, 0), v, FixupKind::kAbsolute);
    return;
  }
  if (m == "lui") {
    const RegNum rd = sreg(); comma();
    const Imm v = immediate();
    emit_imm(ir::imm_op(Opcode::kLui, rd, 0, 0), v, FixupKind::kHigh16);
    return;
  }
  if (m == "li" || m == "la") {
    const RegNum rd = sreg(); comma();
    const Imm v = immediate();
    if (v.symbol.empty() && v.value >= -32768 && v.value <= 32767) {
      emit(ir::imm_op(Opcode::kAddi, rd, 0, static_cast<std::int32_t>(v.value)));
    } else if (v.symbol.empty()) {
      const auto u = static_cast<std::uint32_t>(v.value);
      std::int32_t hi = static_cast<std::int32_t>((u >> 16) & 0xFFFF);
      std::int32_t lo = static_cast<std::int32_t>(u & 0xFFFF);
      if (hi >= 0x8000) hi -= 0x10000;
      if (lo >= 0x8000) lo -= 0x10000;
      emit(ir::imm_op(Opcode::kLui, rd, 0, hi));
      emit(ir::imm_op(Opcode::kOri, rd, rd, lo));
    } else {
      emit(ir::imm_op(Opcode::kLui, rd, 0, 0), FixupKind::kHigh16, v.symbol);
      emit(ir::imm_op(Opcode::kOri, rd, rd, 0), FixupKind::kLow16, v.symbol);
    }
    return;
  }

  // --- scalar memory -----------------------------------------------------------
  if (m == "lw" || m == "sw") {
    const RegNum r = sreg(); comma();
    const Imm off = immediate();
    expect(TokKind::kLParen, "'('");
    const RegNum base = sreg();
    expect(TokKind::kRParen, "')'");
    Instruction i = (m == "lw") ? ir::lw(r, base, 0) : ir::sw(r, base, 0);
    emit_imm(i, off, FixupKind::kAbsolute);
    return;
  }

  // --- control flow ---------------------------------------------------------
  if (auto it = kBranches.find(m); it != kBranches.end()) {
    const RegNum a = sreg(); comma();
    const RegNum b = sreg(); comma();
    const Imm target = immediate();
    emit_imm(ir::branch(it->second, a, b, 0), target, FixupKind::kRelative);
    return;
  }
  if (auto it = kSwappedBranches.find(m); it != kSwappedBranches.end()) {
    const RegNum a = sreg(); comma();
    const RegNum b = sreg(); comma();
    const Imm target = immediate();
    emit_imm(ir::branch(it->second, b, a, 0), target, FixupKind::kRelative);
    return;
  }
  if (m == "bfset" || m == "bfclr") {
    const RegNum f = sflag(); comma();
    const Imm target = immediate();
    emit_imm(ir::branch_flag(m == "bfset" ? Opcode::kBfset : Opcode::kBfclr, f, 0),
             target, FixupKind::kRelative);
    return;
  }
  if (m == "b") {  // pseudo: unconditional relative branch
    const Imm target = immediate();
    emit_imm(ir::branch(Opcode::kBeq, 0, 0, 0), target, FixupKind::kRelative);
    return;
  }
  if (m == "j") {
    const Imm target = immediate();
    emit_imm(ir::jump(Opcode::kJ, 0), target, FixupKind::kAbsolute);
    return;
  }
  if (m == "jal") {
    const RegNum link = sreg(); comma();
    const Imm target = immediate();
    emit_imm(ir::jal(link, 0), target, FixupKind::kAbsolute);
    return;
  }
  if (m == "jr") { emit(ir::jr(sreg())); return; }

  // --- parallel ALU (register and broadcast-scalar forms) ---------------------
  if (m.size() > 1 && m[0] == 'p') {
    const std::string body = m.substr(1);
    // broadcast-scalar: trailing 's' (padds, psubs, ..., pslts)
    if (body.size() > 1 && body.back() == 's' && kAlu3.count(body.substr(0, body.size() - 1))) {
      const AluFunct f = kAlu3.at(body.substr(0, body.size() - 1));
      const RegNum rd = preg(); comma();
      const RegNum rs = sreg(); comma();
      const RegNum rt = preg();
      emit(ir::palus(f, rd, rs, rt, opt_mask()));
      return;
    }
    if (kAlu3.count(body)) {
      const RegNum rd = preg(); comma();
      const RegNum rs = preg(); comma();
      const RegNum rt = preg();
      emit(ir::palu(kAlu3.at(body), rd, rs, rt, opt_mask()));
      return;
    }
    if (body == "mov") {
      const RegNum rd = preg(); comma();
      const RegNum rs = preg();
      emit(ir::palu(AluFunct::kMov, rd, rs, 0, opt_mask()));
      return;
    }
  }
  if (auto it = kPImms.find(m); it != kPImms.end()) {
    const RegNum rd = preg(); comma();
    const RegNum rs = preg(); comma();
    const Imm v = immediate();
    if (!v.symbol.empty()) fail("parallel immediates must be constants");
    emit(ir::pimm(it->second, rd, rs, static_cast<std::int32_t>(v.value), opt_mask()));
    return;
  }
  if (m == "pmovi") {
    const RegNum rd = preg(); comma();
    const Imm v = immediate();
    if (!v.symbol.empty()) fail("parallel immediates must be constants");
    emit(ir::pimm(PImmOp::kMovi, rd, 0, static_cast<std::int32_t>(v.value), opt_mask()));
    return;
  }

  // --- parallel compares -> parallel flag --------------------------------------
  if (m.size() > 2 && m[0] == 'p' && m[1] == 'c') {
    std::string op = m.substr(2);
    const bool scalar_form = op.size() > 1 && op.back() == 's' && kCmp.count(op.substr(0, op.size() - 1));
    if (scalar_form) op = op.substr(0, op.size() - 1);
    if (kCmp.count(op)) {
      const RegNum fd = pflag(); comma();
      if (scalar_form) {
        const RegNum rs = sreg(); comma();
        const RegNum rt = preg();
        emit(ir::pcmps(kCmp.at(op), fd, rs, rt, opt_mask()));
      } else {
        const RegNum rs = preg(); comma();
        const RegNum rt = preg();
        emit(ir::pcmp(kCmp.at(op), fd, rs, rt, opt_mask()));
      }
      return;
    }
  }

  // --- parallel flag logic -------------------------------------------------------
  if (m.size() > 2 && m[0] == 'p' && m[1] == 'f') {
    const std::string op = m.substr(2);
    if (auto it = kFlag3.find(op); it != kFlag3.end()) {
      const RegNum fd = pflag(); comma();
      const RegNum fs = pflag(); comma();
      const RegNum ft = pflag();
      emit(ir::pflag(it->second, fd, fs, ft, opt_mask()));
      return;
    }
    if (op == "not" || op == "mov") {
      const RegNum fd = pflag(); comma();
      const RegNum fs = pflag();
      emit(ir::pflag(op == "not" ? FlagFunct::kNot : FlagFunct::kMov, fd, fs, 0, opt_mask()));
      return;
    }
    if (op == "set" || op == "clr") {
      const RegNum fd = pflag();
      emit(ir::pflag(op == "set" ? FlagFunct::kSet : FlagFunct::kClr, fd, 0, 0, opt_mask()));
      return;
    }
  }

  // --- parallel memory -------------------------------------------------------
  if (m == "plw" || m == "psw") {
    const RegNum r = preg(); comma();
    const Imm off = immediate();
    if (!off.symbol.empty()) fail("parallel memory offsets must be constants");
    expect(TokKind::kLParen, "'('");
    const RegNum base = preg();
    expect(TokKind::kRParen, "')'");
    const auto o = static_cast<std::int32_t>(off.value);
    emit(m == "plw" ? ir::plw(r, base, o, 0) : ir::psw(r, base, o, 0));
    // Mask suffix comes after the close paren.
    if (at(TokKind::kQuestion)) { take(); instrs_.back().instr.mask = pflag(); }
    return;
  }
  if (m == "pbcast") {
    const RegNum rd = preg(); comma();
    const RegNum rs = sreg();
    emit(ir::pbcast(rd, rs, opt_mask()));
    return;
  }
  if (m == "pindex") {
    const RegNum rd = preg();
    emit(ir::pindex(rd, opt_mask()));
    return;
  }

  // --- reductions ----------------------------------------------------------------
  if (auto it = kRedWord.find(m); it != kRedWord.end()) {
    const RegNum rd = sreg(); comma();
    const RegNum rs = preg();
    emit(ir::red(it->second, rd, rs, 0, opt_mask()));
    return;
  }
  if (m == "rcount" || m == "rany") {
    const RegNum rd = sreg(); comma();
    const RegNum fs = pflag();
    emit(ir::red(m == "rcount" ? RedFunct::kCount_ : RedFunct::kAny, rd, fs, 0, opt_mask()));
    return;
  }
  if (m == "rfand" || m == "rfor") {
    const RegNum fd = sflag(); comma();
    const RegNum fs = pflag();
    emit(ir::red(m == "rfand" ? RedFunct::kFAnd : RedFunct::kFOr, fd, fs, 0, opt_mask()));
    return;
  }
  if (m == "getpe") {
    const RegNum rd = sreg(); comma();
    const RegNum ps = preg(); comma();
    const RegNum rt = sreg();
    emit(ir::red(RedFunct::kGetPe, rd, ps, rt, opt_mask()));
    return;
  }
  if (m == "rsel" || m == "rstep") {
    const RegNum fd = pflag(); comma();
    const RegNum fs = pflag();
    emit(ir::rsel(m == "rsel" ? RSelFunct::kFirst : RSelFunct::kClearFirst, fd, fs, opt_mask()));
    return;
  }

  // --- threads ------------------------------------------------------------------
  if (m == "tspawn") {
    const RegNum rd = sreg(); comma();
    const RegNum rs = sreg();
    emit(ir::tctl(TCtlFunct::kSpawn, rd, rs));
    return;
  }
  if (m == "tjoin") { emit(ir::tctl(TCtlFunct::kJoin, 0, sreg())); return; }
  if (m == "texit") { emit(ir::tctl(TCtlFunct::kExit)); return; }
  if (m == "tid" || m == "npes" || m == "nthreads") {
    const RegNum rd = sreg();
    const TCtlFunct f = (m == "tid")    ? TCtlFunct::kTid
                        : (m == "npes") ? TCtlFunct::kNPes
                                        : TCtlFunct::kNThreads;
    emit(ir::tctl(f, rd));
    return;
  }
  if (m == "tput" || m == "tget") {
    const RegNum rd = sreg(); comma();
    const RegNum rs = sreg(); comma();
    const RegNum rt = sreg();
    emit(ir::tmov(m == "tput" ? TMovFunct::kPut : TMovFunct::kGet, rd, rs, rt));
    return;
  }

  fail("unknown mnemonic '" + m + "'");
}

}  // namespace

std::int64_t Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end())
    throw AssemblyError("undefined symbol '" + name + "'");
  return it->second;
}

Program assemble(const std::string& source) { return Assembler(source).run(); }

}  // namespace masc
