#include "assembler/program_io.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "isa/encoding.hpp"

namespace masc {

namespace {

constexpr char kMagic[8] = {'M', 'A', 'S', 'C', 'O', 'B', 'J', '1'};

void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(b, 4);
}

void put_i64(std::ostream& os, std::int64_t sv) {
  auto v = static_cast<std::uint64_t>(sv);
  for (int i = 0; i < 8; ++i) {
    const char byte = static_cast<char>(v >> (8 * i));
    os.write(&byte, 1);
  }
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw AssemblyError("truncated program file");
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::int64_t get_i64(std::istream& is) {
  std::uint64_t v = 0;
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  if (!is) throw AssemblyError("truncated program file");
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return static_cast<std::int64_t>(v);
}

}  // namespace

void save_program(std::ostream& os, const Program& program) {
  os.write(kMagic, sizeof(kMagic));
  put_u32(os, program.entry);
  put_u32(os, static_cast<std::uint32_t>(program.text.size()));
  put_u32(os, static_cast<std::uint32_t>(program.data.size()));
  put_u32(os, static_cast<std::uint32_t>(program.symbols.size()));
  for (const auto w : program.text) put_u32(os, w);
  for (const auto w : program.data) put_u32(os, w);
  for (const auto& [name, value] : program.symbols) {
    put_u32(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    put_i64(os, value);
  }
}

void save_program_file(const std::string& path, const Program& program) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw AssemblyError("cannot open output file: " + path);
  save_program(os, program);
}

Program load_program(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || !std::equal(magic, magic + 8, kMagic))
    throw AssemblyError("not a MASC program file (bad magic)");
  Program prog;
  prog.entry = get_u32(is);
  const std::uint32_t text_words = get_u32(is);
  const std::uint32_t data_words = get_u32(is);
  const std::uint32_t num_symbols = get_u32(is);
  // Sanity bounds to catch corrupt headers before allocating.
  if (text_words > (1u << 24) || data_words > (1u << 24) ||
      num_symbols > (1u << 20))
    throw AssemblyError("implausible program file header");
  prog.text.resize(text_words);
  for (auto& w : prog.text) w = get_u32(is);
  prog.data.resize(data_words);
  for (auto& w : prog.data) w = get_u32(is);
  for (std::uint32_t i = 0; i < num_symbols; ++i) {
    const std::uint32_t len = get_u32(is);
    if (len > 4096) throw AssemblyError("implausible symbol length");
    std::string name(len, '\0');
    is.read(name.data(), len);
    if (!is) throw AssemblyError("truncated program file");
    prog.symbols[name] = get_i64(is);
  }
  return prog;
}

Program load_program_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw AssemblyError("cannot open program file: " + path);
  return load_program(is);
}

std::string render_listing(const Program& program) {
  // Labels by address (text symbols only — values inside the text range).
  std::multimap<Addr, std::string> labels;
  for (const auto& [name, value] : program.symbols)
    if (value >= 0 && static_cast<std::size_t>(value) <= program.text.size())
      labels.emplace(static_cast<Addr>(value), name);

  std::ostringstream os;
  os << "; entry: " << program.entry << "\n";
  for (Addr a = 0; a < program.text.size(); ++a) {
    for (auto [it, end] = labels.equal_range(a); it != end; ++it)
      os << it->second << ":\n";
    std::string dis;
    try {
      dis = disassemble(decode(program.text[a]));
    } catch (const DecodeError&) {
      dis = "<illegal>";
    }
    os << "  " << std::setw(5) << a << "  " << std::hex << std::setw(8)
       << std::setfill('0') << program.text[a] << std::dec << std::setfill(' ')
       << "  " << dis << '\n';
  }
  if (!program.data.empty()) {
    os << "; data segment (" << program.data.size() << " words)\n";
    for (Addr a = 0; a < program.data.size(); ++a)
      os << "  [" << a << "] = " << program.data[a] << '\n';
  }
  return os.str();
}

}  // namespace masc
