// Binary program-image container (".mo" files) and human-readable
// listings. The container lets the assembler driver (masc-as) and the
// runner (masc-run) exchange programs without re-assembling.
#pragma once

#include <iosfwd>
#include <string>

#include "assembler/program.hpp"

namespace masc {

/// Serialize a program image. Format: "MASCOBJ1" magic, then
/// little-endian u32 entry / text words / data words / symbol count,
/// the text and data word arrays, and (u32 length, bytes, i64 value)
/// per symbol.
void save_program(std::ostream& os, const Program& program);
void save_program_file(const std::string& path, const Program& program);

/// Deserialize; throws AssemblyError on malformed input.
Program load_program(std::istream& is);
Program load_program_file(const std::string& path);

/// Human-readable listing: address, encoded word, disassembly, with
/// label names interleaved at their definition addresses.
std::string render_listing(const Program& program);

}  // namespace masc
