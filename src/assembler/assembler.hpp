// Two-pass assembler for MASC assembly.
//
// Syntax summary (full reference in docs/ISA.md):
//   label:   addi  r1, r0, 5          # scalar immediate
//            padd  p1, p2, p3 ?pf2    # parallel, masked by flag pf2
//            padds p1, r4, p2         # broadcast-scalar operand form
//            rmax  r5, p1             # reduction to a scalar register
//            lw    r2, 3(r1)          # word-addressed memory
//            beq   r1, r2, label
//            .data
//   tbl:     .word 1, 2, 3
//
// Registers: rN scalar GPR, pN parallel GPR, sfN scalar flag, pfN parallel
// flag. r0/p0 read as 0; sf0/pf0 read as 1. Comments: '#', ';', '//'.
// Directives: .text .data .org .word .space .equ .entry
#pragma once

#include <string>

#include "assembler/program.hpp"

namespace masc {

/// Assemble source text into a program image.
/// Throws AssemblyError with line/column context on any source error.
Program assemble(const std::string& source);

}  // namespace masc
