#include "assembler/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace masc {

namespace {

[[noreturn]] void fail(unsigned line, unsigned col, const std::string& msg) {
  throw AssemblyError("line " + std::to_string(line) + ":" +
                      std::to_string(col) + ": " + msg);
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool ident_cont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  unsigned line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind k, std::string text = "", std::int64_t v = 0) {
    out.push_back(Token{k, std::move(text), v, line, col});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      // Collapse runs of blank lines into one newline token.
      if (!out.empty() && out.back().kind != TokKind::kNewline)
        push(TokKind::kNewline);
      ++i;
      ++line;
      col = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') { ++i; ++col; continue; }
    if (c == '#' || c == ';' || (c == '/' && i + 1 < n && src[i + 1] == '/')) {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == ',') { push(TokKind::kComma); ++i; ++col; continue; }
    if (c == ':') { push(TokKind::kColon); ++i; ++col; continue; }
    if (c == '(') { push(TokKind::kLParen); ++i; ++col; continue; }
    if (c == ')') { push(TokKind::kRParen); ++i; ++col; continue; }
    if (c == '?') { push(TokKind::kQuestion); ++i; ++col; continue; }

    if (c == '\'') {
      if (i + 2 >= n) fail(line, col, "unterminated character literal");
      char v = src[i + 1];
      std::size_t adv = 3;
      if (v == '\\') {
        if (i + 3 >= n) fail(line, col, "unterminated character literal");
        const char e = src[i + 2];
        switch (e) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          default: fail(line, col, "unknown escape in character literal");
        }
        adv = 4;
      }
      if (src[i + adv - 1] != '\'') fail(line, col, "unterminated character literal");
      push(TokKind::kInt, "", static_cast<std::int64_t>(v));
      i += adv;
      col += static_cast<unsigned>(adv);
      continue;
    }

    const bool neg = (c == '-');
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (neg && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i + (neg ? 1 : 0);
      int base = 10;
      if (j + 1 < n && src[j] == '0' && (src[j + 1] == 'x' || src[j + 1] == 'X')) {
        base = 16;
        j += 2;
      } else if (j + 1 < n && src[j] == '0' && (src[j + 1] == 'b' || src[j + 1] == 'B')) {
        base = 2;
        j += 2;
      }
      std::int64_t v = 0;
      std::size_t digits = 0;
      for (; j < n; ++j, ++digits) {
        const char d = src[j];
        int dv;
        if (d >= '0' && d <= '9') dv = d - '0';
        else if (base == 16 && d >= 'a' && d <= 'f') dv = d - 'a' + 10;
        else if (base == 16 && d >= 'A' && d <= 'F') dv = d - 'A' + 10;
        else break;
        if (dv >= base) fail(line, col, "digit out of range for base");
        v = v * base + dv;
        if (v > 0xFFFFFFFFLL) fail(line, col, "integer literal too large");
      }
      if (digits == 0) fail(line, col, "malformed integer literal");
      push(TokKind::kInt, "", neg ? -v : v);
      col += static_cast<unsigned>(j - i);
      i = j;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_cont(src[j])) ++j;
      push(TokKind::kIdent, src.substr(i, j - i));
      col += static_cast<unsigned>(j - i);
      i = j;
      continue;
    }

    fail(line, col, std::string("unexpected character '") + c + "'");
  }
  if (!out.empty() && out.back().kind != TokKind::kNewline)
    out.push_back(Token{TokKind::kNewline, "", 0, line, col});
  out.push_back(Token{TokKind::kEnd, "", 0, line, col});
  return out;
}

}  // namespace masc
