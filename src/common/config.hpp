// Machine configuration: every architectural parameter of the simulated
// Multithreaded ASC Processor lives here, so one simulator models the
// 2007 prototype, its prior-generation baselines, and the paper's §9
// scaling studies.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace masc {

/// Multiplier implementation options (paper §6.2, "Multiplier").
enum class MultiplierKind : std::uint8_t {
  kNone,       ///< No multiplier; MUL/PMUL are illegal instructions.
  kSequential, ///< Iterative unit: one op at a time, `width` cycles,
               ///< structural hazard across threads.
  kPipelined,  ///< Hard-block pipelined multiplier: 1 op/cycle, 2-cycle
               ///< latency, no structural hazards.
};

/// Divider implementation options (paper §6.2, "Divider" — sequential only).
enum class DividerKind : std::uint8_t {
  kNone,
  kSequential, ///< `width`-cycle iterative divider, shared across threads.
};

/// Multithreading discipline (paper §5 taxonomy). The prototype uses
/// fine-grain multithreading; the other two policies exist so §5's
/// argument — reduction stalls are too short and frequent for
/// coarse-grain switching, while SMT's extra issue ports are unnecessary
/// at this pipeline width — can be measured rather than asserted.
enum class ThreadSchedPolicy : std::uint8_t {
  kFineGrain,   ///< switch threads every cycle, zero-cost (the prototype)
  kCoarseGrain, ///< run one thread until a long stall, then pay a
                ///< pipeline-refill penalty to switch
  kSmt,         ///< issue up to `issue_width` instructions from distinct
                ///< threads each cycle (idealized ports)
};

/// Maximum/minimum reduction unit options (paper §6.4): the previous ASC
/// Processors used the bit-serial Falkoff algorithm (one bit of the word
/// per cycle, one operation at a time); the multithreaded prototype
/// replaced it with a pipelined comparator tree precisely "to avoid
/// stalls in the event that multiple threads attempt to perform a
/// maximum or minimum operation at the same time."
enum class MaxMinUnitKind : std::uint8_t {
  kPipelinedTree, ///< lg p latency, 1 op/cycle initiation (the prototype)
  kFalkoff,       ///< word-width latency, unshareable (the predecessors)
};

/// Register-file implementation options (paper §6.2 discusses the
/// tradeoff; §9 proposes exploring "alternative PE organizations that
/// require fewer RAM blocks and take advantage of unused logic").
enum class RegFileImpl : std::uint8_t {
  kBlockRam, ///< replicated M4K blocks (the prototype)
  kLutRam,   ///< distributed LUT RAM: zero blocks, heavy LE cost at high
             ///< thread counts (why the paper ruled it out at 16 threads)
};

/// Flag-register-file implementation options (paper §6.2: block RAM
/// shared between groups of PEs, vs plain flip-flops).
enum class FlagFileImpl : std::uint8_t {
  kSharedBlockRam, ///< one replica set per group of PEs (the prototype)
  kFlipFlops,      ///< per-PE registers: zero blocks, more LEs
};

/// Full architectural parameter set.
struct MachineConfig {
  // --- Array geometry -----------------------------------------------------
  std::uint32_t num_pes = 16;      ///< PE array size p.
  unsigned word_width = 8;         ///< Data word width in bits (8/16/32).

  // --- Multithreading -----------------------------------------------------
  std::uint32_t num_threads = 16;  ///< Hardware thread contexts.
  bool multithreading = true;      ///< false = single-thread baseline [7]:
                                   ///< only thread 0 exists.
  ThreadSchedPolicy sched_policy = ThreadSchedPolicy::kFineGrain;
  /// SMT only: instructions issued per cycle (from distinct threads).
  std::uint32_t issue_width = 1;
  /// Coarse-grain only: cycles to flush/refill on a thread switch
  /// (paper §5: "It takes many cycles to perform a thread switch").
  std::uint32_t switch_penalty = 8;

  // --- Register / memory resources (per thread where noted) ---------------
  std::uint32_t num_scalar_regs = 16;   ///< Scalar GPRs per thread (r0 = 0).
  std::uint32_t num_parallel_regs = 16; ///< Parallel GPRs per thread per PE.
  std::uint32_t num_flag_regs = 8;      ///< 1-bit flag regs per thread
                                        ///< (scalar and parallel spaces;
                                        ///< flag 0 reads as 1).
  std::uint32_t local_mem_bytes = 1024; ///< PE local memory (thread-shared).
  std::uint32_t scalar_mem_bytes = 65536; ///< Control-unit data memory.
  std::uint32_t instr_mem_words = 16384;  ///< Instruction memory capacity.

  // --- Broadcast / reduction networks (paper §6.4) -------------------------
  std::uint32_t broadcast_arity = 2;  ///< k of the k-ary broadcast tree.
  bool pipelined_network = true;      ///< false = non-pipelined baseline [6]:
                                      ///< zero-latency combinational network
                                      ///< whose cost appears in the clock
                                      ///< model instead of in cycles.

  /// false models the original (pre-[7]) non-pipelined ASC Processor:
  /// instructions execute serially, one every 5 cycles, with no overlap.
  bool pipelined_execution = true;

  // --- Functional units -----------------------------------------------------
  MultiplierKind multiplier = MultiplierKind::kPipelined;
  DividerKind divider = DividerKind::kSequential;
  MaxMinUnitKind maxmin_unit = MaxMinUnitKind::kPipelinedTree;

  // --- PE organization (§9 design space; resource model only) ----------------
  RegFileImpl regfile_impl = RegFileImpl::kBlockRam;
  FlagFileImpl flagfile_impl = FlagFileImpl::kSharedBlockRam;

  // --- Host execution (NOT architectural) -----------------------------------
  /// Host threads used to simulate the PE array (docs/THREADING.md).
  /// 1 = serial (the seed behavior); N > 1 fans the SoA row loops out
  /// over N-1 pooled workers plus the coordinator. Results are
  /// bit-identical for every value, which is why this field is
  /// deliberately EXCLUDED from name(), sweep_cache_key(), and the
  /// checkpoint header: two runs differing only in sim_threads are the
  /// same simulation, and their artifacts stay interchangeable.
  std::uint32_t sim_threads = 1;

  // --- Derived latencies ----------------------------------------------------
  /// Broadcast network latency b in cycles (0 when non-pipelined).
  unsigned broadcast_latency() const;
  /// Reduction network latency r in cycles (0 when non-pipelined).
  unsigned reduction_latency() const;
  /// Latency of the sequential multiplier/divider in cycles.
  unsigned sequential_mul_cycles() const { return word_width; }
  unsigned sequential_div_cycles() const { return word_width; }

  /// Number of usable hardware threads (1 when multithreading is off).
  std::uint32_t effective_threads() const {
    return multithreading ? num_threads : 1;
  }

  /// Validate every field; throws ConfigError with a precise message.
  void validate() const;

  /// Short human-readable identifier, e.g. "p16.t16.w8.k2".
  std::string name() const;
};

}  // namespace masc
