// Content-addressed result cache: a sharded, byte-budgeted LRU map.
//
// Every simulation in this codebase is a pure function of its inputs
// (tests/sweep_test.cpp pins bit-identity across worker counts and
// chunking), so a repeated job can be answered from memory instead of
// re-paying the cycle-accurate cost. This container provides the
// mechanism: keys are 128-bit content hashes (common/hash.hpp) over the
// canonical inputs, values are shared_ptrs to immutable result objects,
// and the total footprint is bounded by a byte budget with per-shard
// LRU eviction.
//
// Concurrency: the key space is split across N independently locked
// shards (key.lo % shards), so concurrent hit/miss storms from many
// sweep workers and server sessions contend only when they collide on a
// shard. Counters are per-shard and aggregated on stats(); values are
// immutable once inserted, so a returned shared_ptr never needs its own
// lock.
//
// The cache is *semantically invisible*: a hit must be byte-identical
// to recomputation. Callers are responsible for (a) keying over every
// input that can affect the result and (b) never inserting a value that
// is not the full, deterministic output of a completed computation
// (sim/sweep.cpp refuses, e.g., fault-injected or early-stopped runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"

namespace masc {

/// Aggregated cache observability counters (monotonic except entries /
/// bytes, which are live gauges).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;        ///< live entries right now
  std::size_t bytes = 0;          ///< live charged bytes right now
  std::size_t capacity_bytes = 0;
  unsigned shards = 0;
};

/// JSON object for /stats exposure (serve/metrics.cpp embeds it).
std::string to_json(const CacheStats& s);

template <typename Value>
class ResultCache {
 public:
  /// `capacity_bytes` bounds the sum of charged entry sizes; `shards`
  /// is clamped to [1, 256] and each shard gets an equal slice of the
  /// budget (rounded up, so tiny budgets still admit one entry).
  explicit ResultCache(std::size_t capacity_bytes, unsigned shards = 16)
      : capacity_bytes_(capacity_bytes) {
    if (shards < 1) shards = 1;
    if (shards > 256) shards = 256;
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
      shards_.push_back(std::make_unique<Shard>());
    shard_capacity_ = (capacity_bytes + shards - 1) / shards;
  }

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look up a key; a hit refreshes its LRU position and returns the
  /// immutable value. Counts one hit or one miss.
  std::shared_ptr<const Value> lookup(const Hash128& key) {
    Shard& s = shard_of(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.misses;
      return nullptr;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // most recently used
    return it->second->value;
  }

  /// lookup() without the hit/miss accounting (still refreshes LRU
  /// recency). For internal re-checks — single-flight claims, peer
  /// cache_get serving — where counting would double-bill one logical
  /// lookup and skew the hit-rate the operator sees.
  std::shared_ptr<const Value> peek(const Hash128& key) {
    Shard& s = shard_of(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it == s.index.end()) return nullptr;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->value;
  }

  /// Visit every live entry (shard by shard, under that shard's lock).
  /// `fn(key, value, bytes)` must not call back into the cache.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& sp : shards_) {
      const Shard& s = *sp;
      const std::lock_guard<std::mutex> lock(s.mu);
      for (const Entry& e : s.lru) fn(e.key, e.value, e.bytes);
    }
  }

  /// Insert (or refresh) a value charged at `bytes`, evicting this
  /// shard's least recently used entries until it fits. An entry larger
  /// than a whole shard's budget is not admitted (it would only evict
  /// everything and then be evicted itself by the next insert).
  void insert(const Hash128& key, std::shared_ptr<const Value> value,
              std::size_t bytes) {
    Shard& s = shard_of(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    if (bytes > shard_capacity_) return;
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Deterministic inputs produce deterministic values, so a re-insert
      // carries the same bytes; just refresh recency and the charge.
      s.bytes -= it->second->bytes;
      s.bytes += bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    while (s.bytes + bytes > shard_capacity_ && !s.lru.empty()) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.index.erase(victim.key);
      s.lru.pop_back();
      ++s.evictions;
    }
    s.lru.push_front(Entry{key, std::move(value), bytes});
    s.index.emplace(key, s.lru.begin());
    s.bytes += bytes;
    ++s.insertions;
  }

  /// Snapshot of the aggregated counters across all shards.
  CacheStats stats() const {
    CacheStats out;
    out.capacity_bytes = capacity_bytes_;
    out.shards = static_cast<unsigned>(shards_.size());
    for (const auto& sp : shards_) {
      const Shard& s = *sp;
      const std::lock_guard<std::mutex> lock(s.mu);
      out.hits += s.hits;
      out.misses += s.misses;
      out.insertions += s.insertions;
      out.evictions += s.evictions;
      out.entries += s.index.size();
      out.bytes += s.bytes;
    }
    return out;
  }

  std::size_t capacity_bytes() const { return capacity_bytes_; }
  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

 private:
  struct Entry {
    Hash128 key;
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Hash128, typename std::list<Entry>::iterator,
                       Hash128Hasher>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_of(const Hash128& key) {
    // The digest is uniform; either half selects shards evenly.
    return *shards_[key.lo % shards_.size()];
  }

  std::size_t capacity_bytes_;
  std::size_t shard_capacity_;
  /// unique_ptr because Shard holds a mutex (immovable), and the vector
  /// is sized once in the constructor anyway.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace masc
