#include "common/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace masc {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

bool Value::as_bool() const {
  if (kind != Kind::kBool) throw JsonError("expected JSON boolean");
  return boolean;
}

double Value::as_number() const {
  if (kind != Kind::kNumber) throw JsonError("expected JSON number");
  return number;
}

std::int64_t Value::as_int() const {
  if (kind != Kind::kNumber || !is_integer)
    throw JsonError("expected JSON integer");
  return integer;
}

std::uint64_t Value::as_uint() const {
  const std::int64_t v = as_int();
  if (v < 0) throw JsonError("expected non-negative JSON integer");
  return static_cast<std::uint64_t>(v);
}

const std::string& Value::as_string() const {
  if (kind != Kind::kString) throw JsonError("expected JSON string");
  return string;
}

const std::vector<Value>& Value::as_array() const {
  if (kind != Kind::kArray) throw JsonError("expected JSON array");
  return array;
}

bool Value::get_bool(const std::string& key, bool dflt) const {
  const Value* v = find(key);
  return v ? v->as_bool() : dflt;
}

std::int64_t Value::get_int(const std::string& key, std::int64_t dflt) const {
  const Value* v = find(key);
  return v ? v->as_int() : dflt;
}

std::uint64_t Value::get_uint(const std::string& key,
                              std::uint64_t dflt) const {
  const Value* v = find(key);
  return v ? v->as_uint() : dflt;
}

double Value::get_number(const std::string& key, double dflt) const {
  const Value* v = find(key);
  return v ? v->as_number() : dflt;
}

std::string Value::get_string(const std::string& key,
                              const std::string& dflt) const {
  const Value* v = find(key);
  return v ? v->as_string() : dflt;
}

namespace {

void serialize_into(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::kNull:
      out += "null";
      return;
    case Value::Kind::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case Value::Kind::kNumber: {
      char buf[40];
      if (v.is_integer) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v.integer));
      } else if (std::isfinite(v.number)) {
        std::snprintf(buf, sizeof buf, "%.17g", v.number);
      } else {
        // JSON has no Inf/NaN; parse_number never produces them, but be
        // safe for hand-built values.
        std::snprintf(buf, sizeof buf, "null");
      }
      out += buf;
      return;
    }
    case Value::Kind::kString:
      out += '"';
      out += json_escape(v.string);
      out += '"';
      return;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.array) {
        if (!first) out += ',';
        first = false;
        serialize_into(e, out);
      }
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, val] : v.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        serialize_into(val, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string serialize(const Value& v) {
  std::string out;
  serialize_into(v, out);
  return out;
}

}  // namespace json

namespace {

using json::Value;

/// Recursive-descent parser over the whole document in memory. Wire
/// frames are size-capped well below anything that could make this
/// slow; depth is capped so crafted input cannot blow the C++ stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default:
        return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object(int depth) {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  Value parse_array(int depth) {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') { out += c; continue; }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape character");
      }
    }
  }

  /// \uXXXX escapes, with surrogate pairs, encoded back to UTF-8.
  std::string parse_unicode_escape() {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 < s_.size() && s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
        pos_ += 2;
        const std::uint32_t lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("lone high surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("lone low surrogate");
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) fail("unterminated \\u escape");
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool saw_digit = false;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') { saw_digit = true; ++pos_; continue; }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') integral = false;
        ++pos_;
        continue;
      }
      break;
    }
    if (!saw_digit) fail("bad number");
    const std::string tok = s_.substr(start, pos_ - start);
    Value v;
    v.kind = Value::Kind::kNumber;
    errno = 0;
    char* end = nullptr;
    v.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    if (integral) {
      errno = 0;
      const long long i = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        v.integer = i;
        v.is_integer = true;
      }
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

json::Value parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace masc
