// Content hashing shared by checkpoints and the result cache.
//
// Two strengths of the same FNV-1a construction live here:
//
// - fnv1a64(): the 64-bit variant, used as the checkpoint program
//   fingerprint (sim/checkpoint.cpp) where a collision merely rejects a
//   restore with a clear error.
// - Fnv128: the 128-bit variant (doubled state, the standard 128-bit
//   FNV prime), used to key the deterministic result cache
//   (common/result_cache.hpp) where a collision would silently serve a
//   wrong result — 2^64 keys is not enough headroom for a cache fed by
//   millions of submissions, 2^128 is.
//
// Both are incremental: feed bytes/ints in a fixed canonical order and
// the digest is a pure function of that byte sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace masc {

inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;

/// One step of 64-bit FNV-1a.
constexpr std::uint64_t fnv1a64_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnv64Prime;
}

/// 64-bit FNV-1a over a byte range, resumable via `h`.
inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t h = kFnv64OffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) h = fnv1a64_byte(h, p[i]);
  return h;
}

/// A 128-bit digest, usable as a hash-map key.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) {
    return !(a == b);
  }
};

/// 32 lowercase hex digits (hi then lo): the wire/CLI spelling of a
/// cache key (the `cache_get` op, masc-client cache).
inline std::string to_hex(const Hash128& h) {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = digits[(h.hi >> (4 * i)) & 0xF];
    out[31 - i] = digits[(h.lo >> (4 * i)) & 0xF];
  }
  return out;
}

/// Parse the to_hex() spelling; false on anything but exactly 32 hex
/// digits (case-insensitive).
inline bool hash128_from_hex(std::string_view s, Hash128& out) {
  if (s.size() != 32) return false;
  std::uint64_t half[2] = {0, 0};
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = s[i];
    std::uint64_t v = 0;
    if (c >= '0' && c <= '9') v = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
    half[i / 16] = (half[i / 16] << 4) | v;
  }
  out.hi = half[0];
  out.lo = half[1];
  return true;
}

/// std::hash-style functor: the digest is already uniform, so folding
/// the halves is as good as rehashing.
struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const {
    return static_cast<std::size_t>(h.hi ^ (h.lo * kFnv64Prime));
  }
};

/// Incremental 128-bit FNV-1a (offset basis and prime from the FNV
/// reference parameters), implemented on unsigned __int128.
class Fnv128 {
 public:
  Fnv128() {
    state_ = (static_cast<u128>(0x6c62272e07bb0142ULL) << 64) |
             0x62b821756295c58dULL;
  }

  Fnv128& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    // prime = 2^88 + 2^8 + 0x3b
    const u128 prime = (static_cast<u128>(1) << 88) | 0x13BU;
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= prime;
    }
    return *this;
  }

  Fnv128& u8(std::uint8_t v) { return bytes(&v, 1); }
  Fnv128& u32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return bytes(b, sizeof b);
  }
  Fnv128& u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return bytes(b, sizeof b);
  }
  /// Length-prefixed, so concatenated fields cannot alias each other.
  Fnv128& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  Hash128 digest() const {
    return {static_cast<std::uint64_t>(state_ >> 64),
            static_cast<std::uint64_t>(state_)};
  }

 private:
  using u128 = unsigned __int128;
  u128 state_;
};

}  // namespace masc
