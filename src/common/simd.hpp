// Compile-time host SIMD probe for `--batch-lanes auto` (ROADMAP item 1
// leftover; docs/PERF.md "Lane batching").
//
// Lane batching lays jobs out SoA with job-index innermost so the
// per-PE word ops vectorize across the batch. Machine words are 16-bit
// in every paper configuration, so the natural batch width is one SIMD
// register's worth of 16-bit lanes: AVX-512 -> 32, AVX2 -> 16,
// SSE2/NEON -> 8, scalar -> 4 (floor: even without vector units,
// batching amortizes the control pass — PR 9 measured gains at 4).
//
// The probe is compile-time on purpose: the tree is built natively for
// the serving host (no fat binaries), so the preprocessor view *is* the
// host's ISA, and a constexpr answer costs nothing at runtime.
#pragma once

#include <cstdint>
#include <string>

namespace masc {

struct SimdInfo {
  const char* isa;           ///< human-readable ISA name
  unsigned width_bits;       ///< widest usable vector register
  std::uint32_t auto_lanes;  ///< width_bits / 16-bit word, floored at 4
};

constexpr SimdInfo host_simd() {
#if defined(__AVX512F__)
  return {"avx512", 512, 32};
#elif defined(__AVX2__)
  return {"avx2", 256, 16};
#elif defined(__SSE2__) || defined(__x86_64__)
  return {"sse2", 128, 8};
#elif defined(__ARM_NEON) || defined(__aarch64__)
  return {"neon", 128, 8};
#else
  return {"scalar", 64, 4};
#endif
}

/// The lane count `--batch-lanes auto` resolves to on this build.
constexpr std::uint32_t auto_batch_lanes() { return host_simd().auto_lanes; }

/// The `"simd"` object surfaced in /stats:
///   {"isa":"avx2","width_bits":256,"auto_lanes":16}
inline std::string simd_stats_json() {
  const SimdInfo info = host_simd();
  return std::string("{\"isa\":\"") + info.isa +
         "\",\"width_bits\":" + std::to_string(info.width_bits) +
         ",\"auto_lanes\":" + std::to_string(info.auto_lanes) + "}";
}

}  // namespace masc
