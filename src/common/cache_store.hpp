// Content-addressed on-disk cache segment store (tier L2 of the result
// cache, docs/CACHE.md).
//
// A CacheStore is a directory of append-only segment files holding
// (Hash128 key, payload) records in the serve/journal durability idiom:
// length-prefixed records written as one buffer, fsync'd by the caller's
// policy, recovered on open by truncating a torn tail at the last whole
// record boundary. On top of that journal discipline it adds what a
// *cache* needs and a write-ahead log does not:
//
//   - a per-record FNV-1a checksum, so a corrupt interior record (bad
//     sector, partial overwrite) is skipped and counted instead of
//     poisoning reads or aborting recovery;
//   - a rebuild-on-open in-RAM index (key -> segment/offset), newest
//     record wins, so get() is one pread;
//   - byte-budgeted rotation: the active segment seals at
//     `segment_bytes` and the oldest segment is retired when the store
//     exceeds `capacity_bytes`, salvaging still-live records into the
//     active segment while they fit (FIFO-with-salvage compaction);
//   - graceful degradation: a failed write never throws into the
//     caller's request path — the store counts the failure, restores
//     the segment to a record boundary, and keeps serving reads.
//
// Exactly one process may have a directory open (flock on `<dir>/lock`);
// a second open() throws CacheStoreError rather than interleaving
// appends. The store is internally synchronized; callers may get()/put()
// from any thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/hash.hpp"

namespace masc {

/// Raised by open() when the directory is unusable (uncreatable, locked
/// by another process, unreadable). Never raised by get()/put().
class CacheStoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CacheStoreOptions {
  std::string dir;
  /// Total on-disk byte budget across all segments. When an append
  /// pushes the store past it, oldest segments are retired.
  std::size_t capacity_bytes = 256u << 20;
  /// Seal the active segment and start a new one past this size.
  std::size_t segment_bytes = 8u << 20;
  /// Sanity bound on one record's payload during scan and put; a
  /// length prefix past this is treated as a torn tail, not a record.
  std::size_t max_payload_bytes = 64u << 20;
};

/// Observability counters (monotonic except the gauges at the bottom).
struct CacheStoreStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t puts = 0;             ///< records appended successfully
  std::uint64_t put_failures = 0;     ///< writes refused/failed (degraded path)
  std::uint64_t corrupt_skipped = 0;  ///< checksum-failed records dropped
  std::uint64_t torn_truncated = 0;   ///< torn tails cut on open
  std::uint64_t segments_created = 0;
  std::uint64_t segments_retired = 0;
  std::uint64_t records_evicted = 0;  ///< live records lost with a retired segment
  std::uint64_t records_salvaged = 0; ///< live records recompacted before retire
  std::size_t entries = 0;            ///< live (newest-copy) records
  std::size_t bytes = 0;              ///< sum of segment file sizes
  std::size_t segments = 0;
  std::size_t capacity_bytes = 0;
  bool degraded = false;              ///< writes disabled after a hard failure
};

class CacheStore {
 public:
  explicit CacheStore(CacheStoreOptions opts);
  ~CacheStore();  ///< fsyncs and closes; releases the directory lock

  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Create the directory if needed, take the exclusive lock, scan every
  /// segment rebuilding the index (skipping corrupt records, truncating
  /// torn tails), and open the newest segment for append. Throws
  /// CacheStoreError; the store is unusable unless open() succeeded.
  void open();

  bool is_open() const;

  /// Read the newest record for `key`, verifying its checksum; a
  /// mismatch drops the index entry and reads as a miss.
  std::optional<std::string> get(const Hash128& key);

  /// Append one record; `sync` forces an fsync afterwards. Returns false
  /// (and counts) instead of throwing when the store is degraded, the
  /// payload is oversized, or the write fails — a cache write is always
  /// allowed to fail. Subject to the fault::FaultPlan cache_disk_fail
  /// hooks (docs/RELIABILITY.md).
  bool put(const Hash128& key, std::string_view payload, bool sync);

  /// fsync the active segment (write-behind callers batch puts with
  /// sync=false and call this once per drain).
  void sync();

  CacheStoreStats stats() const;

 private:
  struct Segment {
    int fd = -1;
    std::size_t size = 0;
    std::string path;
  };
  struct Loc {
    std::uint64_t seg = 0;     ///< segment id
    std::uint64_t offset = 0;  ///< record body offset (after length prefix)
    std::uint32_t body_len = 0;
  };

  void close_locked();
  void scan_segment_locked(std::uint64_t id);
  bool create_segment_locked();          ///< open next active segment
  bool append_locked(const Hash128& key, std::string_view payload, bool sync,
                     bool allow_evict);
  void evict_oldest_locked();

  const CacheStoreOptions opts_;
  mutable std::mutex mu_;
  bool open_ = false;
  bool degraded_ = false;  ///< sticky: set when the store cannot keep appending
  int dir_fd_ = -1;
  int lock_fd_ = -1;
  std::map<std::uint64_t, Segment> segments_;  ///< id -> segment (last = active)
  std::unordered_map<Hash128, Loc, Hash128Hasher> index_;
  std::size_t total_bytes_ = 0;
  CacheStoreStats counters_;  ///< gauges recomputed in stats()
};

}  // namespace masc
