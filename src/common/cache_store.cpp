#include "common/cache_store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "fault/fault.hpp"

namespace masc {
namespace {

// Record layout inside a segment (little-endian, journal-style):
//   [u32 body_len][u64 key.hi][u64 key.lo][payload ...][u64 fnv1a64]
// body_len counts everything after the length prefix; the checksum
// covers the body minus its own trailing 8 bytes. kBodyOverhead is the
// key (16) plus the checksum (8).
constexpr std::size_t kBodyOverhead = 24;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::string segment_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%08" PRIu64 ".mcs", id);
  return buf;
}

/// Parse "seg-<digits>.mcs"; 0 = not a segment file (ids start at 1).
std::uint64_t parse_segment_name(const char* name) {
  std::uint64_t id = 0;
  int consumed = 0;
  if (std::sscanf(name, "seg-%" SCNu64 ".mcs%n", &id, &consumed) != 1)
    return 0;
  return name[consumed] == '\0' ? id : 0;
}

bool write_all(int fd, const char* data, std::size_t size, off_t offset) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd, data + done, size - done,
                               offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t size, off_t offset) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, data + done, size - done,
                              offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // short file
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

CacheStore::CacheStore(CacheStoreOptions opts) : opts_([&] {
  // A segment larger than the whole budget could never be retired.
  if (opts.segment_bytes > opts.capacity_bytes && opts.capacity_bytes > 0)
    opts.segment_bytes = opts.capacity_bytes;
  if (opts.segment_bytes == 0) opts.segment_bytes = 1;
  return opts;
}()) {}

CacheStore::~CacheStore() {
  const std::lock_guard<std::mutex> lock(mu_);
  close_locked();
}

void CacheStore::close_locked() {
  if (!segments_.empty()) {
    const Segment& active = segments_.rbegin()->second;
    if (active.fd >= 0) ::fsync(active.fd);
  }
  for (auto& [id, seg] : segments_)
    if (seg.fd >= 0) ::close(seg.fd);
  segments_.clear();
  index_.clear();
  if (dir_fd_ >= 0) ::close(dir_fd_);
  dir_fd_ = -1;
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
  lock_fd_ = -1;
  open_ = false;
}

bool CacheStore::is_open() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

void CacheStore::open() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (open_) return;
  if (opts_.dir.empty()) throw CacheStoreError("cache dir not set");
  if (::mkdir(opts_.dir.c_str(), 0755) < 0 && errno != EEXIST)
    throw CacheStoreError("cache mkdir " + opts_.dir + ": " +
                          std::strerror(errno));
  dir_fd_ = ::open(opts_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd_ < 0)
    throw CacheStoreError("cache opendir " + opts_.dir + ": " +
                          std::strerror(errno));
  const std::string lock_path = opts_.dir + "/lock";
  lock_fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (lock_fd_ < 0) {
    close_locked();
    throw CacheStoreError("cache lock open " + lock_path + ": " +
                          std::strerror(errno));
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) < 0) {
    const std::string what =
        errno == EWOULDBLOCK ? "held by another process"
                             : std::string(std::strerror(errno));
    close_locked();
    throw CacheStoreError("cache dir " + opts_.dir + " lock: " + what);
  }

  // Enumerate and scan existing segments in id order: records later in
  // the directory's timeline overwrite earlier ones in the index.
  std::vector<std::uint64_t> ids;
  if (DIR* d = ::opendir(opts_.dir.c_str())) {
    while (const dirent* e = ::readdir(d))
      if (const std::uint64_t id = parse_segment_name(e->d_name))
        ids.push_back(id);
    ::closedir(d);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    const std::string path = opts_.dir + "/" + segment_name(id);
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) {
      close_locked();
      throw CacheStoreError("cache segment open " + path + ": " +
                            std::strerror(errno));
    }
    segments_[id] = Segment{fd, 0, path};
    scan_segment_locked(id);
  }
  total_bytes_ = 0;
  for (const auto& [id, seg] : segments_) total_bytes_ += seg.size;

  if (segments_.empty() && !create_segment_locked()) {
    close_locked();
    throw CacheStoreError("cache segment create in " + opts_.dir + ": " +
                          std::strerror(errno));
  }
  open_ = true;
}

void CacheStore::scan_segment_locked(std::uint64_t id) {
  Segment& seg = segments_[id];
  struct stat st{};
  if (::fstat(seg.fd, &st) < 0) return;
  std::string data(static_cast<std::size_t>(st.st_size), '\0');
  if (!data.empty() && !read_all(seg.fd, data.data(), data.size(), 0)) {
    data.clear();
  }
  std::size_t pos = 0;
  while (data.size() - pos >= 4) {
    const std::size_t body_len = get_u32(data.data() + pos);
    // An implausible length is crash-written garbage, not a record:
    // everything from here on is a torn tail.
    if (body_len < kBodyOverhead ||
        body_len > opts_.max_payload_bytes + kBodyOverhead)
      break;
    if (data.size() - pos - 4 < body_len) break;  // partial record
    const char* body = data.data() + pos + 4;
    const std::uint64_t want = get_u64(body + body_len - 8);
    const std::uint64_t got = fnv1a64(body, body_len - 8);
    if (want == got) {
      const Hash128 key{get_u64(body), get_u64(body + 8)};
      index_[key] = Loc{id, static_cast<std::uint64_t>(pos + 4),
                        static_cast<std::uint32_t>(body_len)};
    } else {
      // Corrupt interior: framing is intact, content is not. Skip it —
      // a cache can always re-derive a lost value.
      ++counters_.corrupt_skipped;
    }
    pos += 4 + body_len;
  }
  if (pos < data.size()) {
    // Torn tail from a crash mid-append: cut back to the last whole
    // record so future appends land on a boundary.
    if (::ftruncate(seg.fd, static_cast<off_t>(pos)) == 0)
      ++counters_.torn_truncated;
  }
  seg.size = pos;
}

bool CacheStore::create_segment_locked() {
  const std::uint64_t id =
      segments_.empty() ? 1 : segments_.rbegin()->first + 1;
  const std::string path = opts_.dir + "/" + segment_name(id);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  if (!segments_.empty()) {
    // Seal the previous active segment: its records must be durable
    // before anything newer (recovery assumes id order = time order).
    ::fsync(segments_.rbegin()->second.fd);
  }
  segments_[id] = Segment{fd, 0, path};
  if (dir_fd_ >= 0) ::fsync(dir_fd_);  // durability of the new name
  ++counters_.segments_created;
  return true;
}

std::optional<std::string> CacheStore::get(const Hash128& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return std::nullopt;
  ++counters_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  const Loc loc = it->second;
  const auto seg_it = segments_.find(loc.seg);
  if (seg_it == segments_.end()) {
    index_.erase(it);
    return std::nullopt;
  }
  std::string body(loc.body_len, '\0');
  bool ok = read_all(seg_it->second.fd, body.data(), body.size(),
                     static_cast<off_t>(loc.offset));
  if (ok) {
    const std::uint64_t want = get_u64(body.data() + body.size() - 8);
    ok = want == fnv1a64(body.data(), body.size() - 8) &&
         get_u64(body.data()) == key.hi && get_u64(body.data() + 8) == key.lo;
  }
  if (!ok) {
    // Bit rot under a live index: drop the entry and read as a miss —
    // the caller re-derives and a later put replaces the record.
    ++counters_.corrupt_skipped;
    index_.erase(it);
    return std::nullopt;
  }
  ++counters_.hits;
  return body.substr(16, body.size() - kBodyOverhead);
}

bool CacheStore::put(const Hash128& key, std::string_view payload, bool sync) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || degraded_ || payload.size() > opts_.max_payload_bytes) {
    ++counters_.put_failures;
    return false;
  }
  if (fault::FaultInjector* inj = fault::active();
      inj && inj->on_cache_disk_write()) {
    ++counters_.put_failures;
    return false;
  }
  return append_locked(key, payload, sync, /*allow_evict=*/true);
}

bool CacheStore::append_locked(const Hash128& key, std::string_view payload,
                               bool sync, bool allow_evict) {
  const std::size_t body_len = payload.size() + kBodyOverhead;
  if (segments_.rbegin()->second.size + 4 + body_len > opts_.segment_bytes &&
      segments_.rbegin()->second.size > 0) {
    if (!create_segment_locked()) {
      // Cannot rotate (disk full, dir unwritable): writes are done, but
      // reads keep working — the degraded-to-simulation path upstream.
      degraded_ = true;
      ++counters_.put_failures;
      return false;
    }
  }
  Segment& active = segments_.rbegin()->second;
  const std::uint64_t active_id = segments_.rbegin()->first;

  std::string rec;
  rec.reserve(4 + body_len);
  put_u32(rec, static_cast<std::uint32_t>(body_len));
  put_u64(rec, key.hi);
  put_u64(rec, key.lo);
  rec.append(payload.data(), payload.size());
  put_u64(rec, fnv1a64(rec.data() + 4, 16 + payload.size()));

  if (!write_all(active.fd, rec.data(), rec.size(),
                 static_cast<off_t>(active.size))) {
    ++counters_.put_failures;
    // Restore the record boundary; if even that fails the segment tail
    // is unknowable and appends must stop for good.
    if (::ftruncate(active.fd, static_cast<off_t>(active.size)) < 0)
      degraded_ = true;
    return false;
  }
  index_[key] = Loc{active_id, static_cast<std::uint64_t>(active.size + 4),
                    static_cast<std::uint32_t>(body_len)};
  active.size += rec.size();
  total_bytes_ += rec.size();
  ++counters_.puts;
  if (sync) ::fsync(active.fd);
  if (allow_evict)
    while (total_bytes_ > opts_.capacity_bytes && segments_.size() > 1)
      evict_oldest_locked();
  return true;
}

void CacheStore::evict_oldest_locked() {
  const std::uint64_t victim_id = segments_.begin()->first;
  const std::size_t victim_bytes = segments_.begin()->second.size;

  // Salvage pass: records whose newest copy lives in the victim are
  // recompacted into the active segment while the post-retire total
  // stays within budget; the rest are evicted with the file.
  std::vector<Hash128> live;
  for (const auto& [key, loc] : index_)
    if (loc.seg == victim_id) live.push_back(key);
  for (const Hash128& key : live) {
    const Loc loc = index_[key];
    if (loc.seg != victim_id) continue;  // a salvage rotation moved it
    std::string body(loc.body_len, '\0');
    const Segment& vseg = segments_[victim_id];
    if (!read_all(vseg.fd, body.data(), body.size(),
                  static_cast<off_t>(loc.offset)))
      continue;
    if (get_u64(body.data() + body.size() - 8) !=
        fnv1a64(body.data(), body.size() - 8))
      continue;  // corrupt: nothing worth carrying over
    const std::size_t rec_bytes = 4 + body.size();
    if (total_bytes_ + rec_bytes - victim_bytes > opts_.capacity_bytes)
      break;  // budget: keep the newest salvageable prefix only
    const std::string_view payload(body.data() + 16,
                                   body.size() - kBodyOverhead);
    if (append_locked(key, payload, /*sync=*/false, /*allow_evict=*/false))
      ++counters_.records_salvaged;
  }

  Segment& victim = segments_[victim_id];
  if (victim.fd >= 0) ::close(victim.fd);
  ::unlink(victim.path.c_str());
  if (dir_fd_ >= 0) ::fsync(dir_fd_);
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->second.seg == victim_id) {
      ++counters_.records_evicted;
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
  total_bytes_ -= victim.size;
  segments_.erase(victim_id);
  ++counters_.segments_retired;
}

void CacheStore::sync() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || segments_.empty()) return;
  ::fsync(segments_.rbegin()->second.fd);
}

CacheStoreStats CacheStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStoreStats out = counters_;
  out.entries = index_.size();
  out.bytes = total_bytes_;
  out.segments = segments_.size();
  out.capacity_bytes = opts_.capacity_bytes;
  out.degraded = degraded_;
  return out;
}

}  // namespace masc
