// Error types and lightweight contract checking.
#pragma once

#include <stdexcept>
#include <string>

namespace masc {

/// Raised for malformed machine configurations.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by the decoder for illegal or unimplemented encodings.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by the assembler for source-level errors (carries location text).
class AssemblyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when simulated software performs an illegal action
/// (out-of-range memory access, spawning beyond the thread table, ...).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Contract check that survives NDEBUG builds; use for conditions that
/// guard simulator integrity rather than hot-path invariants.
inline void expect(bool cond, const std::string& what) {
  if (!cond) throw SimulationError(what);
}

}  // namespace masc
