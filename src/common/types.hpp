// Fundamental value and index types shared by every MASC module.
//
// The simulated machine is width-configurable (the 2007 prototype used
// 8-bit PEs); architectural words are carried in a 32-bit container and
// truncated to the configured width at commit points (see bits.hpp).
#pragma once

#include <cstdint>
#include <cstddef>

namespace masc {

/// Architectural data word container. Holds 8/16/32-bit machine words.
using Word = std::uint32_t;
/// Signed view of a data word (for signed compare / max / min / shift).
using SWord = std::int32_t;
/// Double-width container for multiply results and saturation checks.
using DWord = std::uint64_t;
using SDWord = std::int64_t;

/// Instruction word: the ISA uses fixed 32-bit encodings.
using InstrWord = std::uint32_t;

/// Byte address into scalar or PE-local memory.
using Addr = std::uint32_t;

/// Index of a processing element within the PE array.
using PEIndex = std::uint32_t;
/// Hardware thread context id.
using ThreadId = std::uint32_t;
/// Architectural register number (scalar GPR, parallel GPR, or flag).
using RegNum = std::uint32_t;

/// Simulation time in clock cycles.
using Cycle = std::uint64_t;

/// Value returned by simulation steps that may not produce a result yet.
inline constexpr Cycle kNoCycle = ~Cycle{0};

}  // namespace masc
