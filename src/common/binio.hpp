// Length-checked binary record I/O for machine checkpoints.
//
// Checkpoints are an internal, same-host format: fixed-width
// little-endian scalars, length-prefixed strings, and raw vectors of
// trivially copyable elements. The reader bounds-checks every access so
// a truncated or corrupted blob surfaces as BinError, never as a wild
// read.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace masc {

/// Raised on a malformed or truncated binary record.
class BinError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinWriter {
 public:
  explicit BinWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }

  void str(const std::string& s) {
    u64(s.size());
    out_.append(s);
  }

  /// Vector of trivially copyable elements, written as raw host-order
  /// bytes with a length prefix (checkpoints never cross hosts).
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    const std::size_t bytes = v.size() * sizeof(T);
    const std::size_t at = out_.size();
    out_.resize(at + bytes);
    if (bytes) std::memcpy(out_.data() + at, v.data(), bytes);
  }

 private:
  std::string& out_;
};

class BinReader {
 public:
  BinReader(const char* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit BinReader(const std::string& blob)
      : BinReader(blob.data(), blob.size()) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p_++);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    p_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    p_ += 8;
    return v;
  }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(p_, p_ + n);
    p_ += n;
    return s;
  }

  /// Read a length-prefixed raw vector into `out` (resized to fit).
  template <typename T>
  void vec(std::vector<T>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    if (n > static_cast<std::uint64_t>(end_ - p_) / sizeof(T))
      throw BinError("binary record truncated");
    out.resize(static_cast<std::size_t>(n));
    const std::size_t bytes = out.size() * sizeof(T);
    if (bytes) std::memcpy(out.data(), p_, bytes);
    p_ += bytes;
  }

  bool done() const { return p_ == end_; }

 private:
  void need(std::uint64_t n) const {
    if (n > static_cast<std::uint64_t>(end_ - p_))
      throw BinError("binary record truncated");
  }
  const char* p_;
  const char* end_;
};

}  // namespace masc
