// Minimal JSON support shared by the sweep/serve tool surface.
//
// The repo emits JSON in several places (masc-run --json, masc-sweep,
// the stats export) and, with the simulation service, also *consumes*
// it on the wire. Emission stays hand-rolled ostringstream code — the
// output schemas are fixed and the hot paths care about allocation —
// but the one string escaper lives here, and parsing goes through a
// small recursive-descent parser instead of N ad-hoc scanners.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace masc {

/// Raised for malformed JSON text handed to parse_json().
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// JSON string escaping for free-form fields (config names, job labels,
/// exception text): quote, backslash, and all control characters, so a
/// newline in an error message cannot break JSONL output.
std::string json_escape(const std::string& s);

namespace json {

/// One parsed JSON value. A tagged struct rather than a std::variant:
/// the accessors below give precise error messages and the protocol
/// code stays readable without visit() boilerplate.
struct Value {
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;          ///< every number, as parsed
  std::int64_t integer = 0;     ///< exact when `is_integer`
  bool is_integer = false;      ///< no '.', 'e', and in int64 range
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  // Checked accessors: throw JsonError naming the expected type.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;      ///< requires an integral number
  std::uint64_t as_uint() const;    ///< requires a non-negative integer
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;

  // Convenience: member of this object with a default when absent.
  bool get_bool(const std::string& key, bool dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  std::uint64_t get_uint(const std::string& key, std::uint64_t dflt) const;
  double get_number(const std::string& key, double dflt) const;
  std::string get_string(const std::string& key,
                         const std::string& dflt) const;
};

/// Serialize a Value back to compact JSON text. Round-trips through
/// parse_json() structurally: integers print exactly, other numbers via
/// shortest-round-trip %.17g, strings fully escaped. Used by the job
/// journal to re-record request payloads it replays on recovery.
std::string serialize(const Value& v);

}  // namespace json

/// Parse one JSON document (throws JsonError on malformed input or
/// trailing garbage). Depth is bounded to keep malicious wire input
/// from overflowing the stack.
json::Value parse_json(const std::string& text);

}  // namespace masc
