// Saturating arithmetic for the sum-reduction unit.
//
// Paper §6.4: "If overflow occurs while computing the sum, the result is
// saturated to the largest or smallest representable value." The sum unit
// operates on signed machine words of the configured width.
#pragma once

#include "common/bits.hpp"
#include "common/types.hpp"

namespace masc {

/// Largest representable signed value at `width` bits, as a raw word.
constexpr Word signed_max_word(unsigned width) {
  return low_mask(width) >> 1;
}

/// Smallest representable signed value at `width` bits, as a raw word.
constexpr Word signed_min_word(unsigned width) {
  return Word{1} << (width - 1);
}

/// Signed saturating addition on `width`-bit words (raw two's-complement
/// container in, raw container out).
constexpr Word sat_add_signed(Word a, Word b, unsigned width) {
  const SDWord sum = static_cast<SDWord>(sign_extend(a, width)) +
                     static_cast<SDWord>(sign_extend(b, width));
  const SDWord hi = static_cast<SDWord>(sign_extend(signed_max_word(width), width));
  const SDWord lo = static_cast<SDWord>(sign_extend(signed_min_word(width), width));
  if (sum > hi) return signed_max_word(width);
  if (sum < lo) return signed_min_word(width);
  return truncate(static_cast<Word>(static_cast<SDWord>(sum)), width);
}

/// Unsigned saturating addition on `width`-bit words.
constexpr Word sat_add_unsigned(Word a, Word b, unsigned width) {
  const DWord sum = static_cast<DWord>(truncate(a, width)) +
                    static_cast<DWord>(truncate(b, width));
  const DWord hi = low_mask(width);
  return sum > hi ? static_cast<Word>(hi) : static_cast<Word>(sum);
}

}  // namespace masc
