#include "common/result_cache.hpp"

#include <sstream>

namespace masc {

std::string to_json(const CacheStats& s) {
  std::ostringstream os;
  os << "{\"hits\":" << s.hits;
  os << ",\"misses\":" << s.misses;
  os << ",\"insertions\":" << s.insertions;
  os << ",\"evictions\":" << s.evictions;
  os << ",\"entries\":" << s.entries;
  os << ",\"bytes\":" << s.bytes;
  os << ",\"capacity_bytes\":" << s.capacity_bytes;
  os << ",\"shards\":" << s.shards;
  os << "}";
  return os.str();
}

}  // namespace masc
