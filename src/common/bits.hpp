// Bit-manipulation helpers used across the ISA, networks, and datapaths.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

#include "common/types.hpp"

namespace masc {

/// ceil(log2(n)) for n >= 1; the pipeline depth of a binary tree over n
/// leaves. ceil_log2(1) == 0 (a single PE needs no tree stage).
constexpr unsigned ceil_log2(std::uint64_t n) {
  assert(n >= 1);
  unsigned bits = 0;
  std::uint64_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

/// ceil(log_k(n)) for n >= 1, k >= 2; depth of a k-ary broadcast tree.
constexpr unsigned ceil_log_k(std::uint64_t n, std::uint64_t k) {
  assert(n >= 1 && k >= 2);
  unsigned depth = 0;
  std::uint64_t cap = 1;
  while (cap < n) {
    cap *= k;
    ++depth;
  }
  return depth;
}

/// Mask covering the low `width` bits (width in [1, 32]).
constexpr Word low_mask(unsigned width) {
  assert(width >= 1 && width <= 32);
  return width == 32 ? ~Word{0} : ((Word{1} << width) - 1);
}

/// Truncate a word to the architectural width.
constexpr Word truncate(Word v, unsigned width) { return v & low_mask(width); }

/// Sign-extend the low `width` bits of v into a full SWord.
constexpr SWord sign_extend(Word v, unsigned width) {
  assert(width >= 1 && width <= 32);
  const Word m = low_mask(width);
  const Word sign_bit = Word{1} << (width - 1);
  const Word x = v & m;
  return (x & sign_bit) ? static_cast<SWord>(x | ~m) : static_cast<SWord>(x);
}

/// Extract bits [hi:lo] from an instruction word.
constexpr std::uint32_t bits(std::uint32_t word, unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < 32);
  return (word >> lo) & low_mask(hi - lo + 1);
}

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Number of set bits.
constexpr unsigned popcount(std::uint64_t v) {
  return static_cast<unsigned>(std::popcount(v));
}

}  // namespace masc
