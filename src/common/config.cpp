#include "common/config.hpp"

#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace masc {

unsigned MachineConfig::broadcast_latency() const {
  if (!pipelined_network) return 0;
  return ceil_log_k(num_pes, broadcast_arity);
}

unsigned MachineConfig::reduction_latency() const {
  if (!pipelined_network) return 0;
  return ceil_log2(num_pes);
}

void MachineConfig::validate() const {
  auto fail = [](const std::string& msg) { throw ConfigError(msg); };

  if (num_pes < 1) fail("num_pes must be >= 1");
  if (word_width != 8 && word_width != 16 && word_width != 32)
    fail("word_width must be 8, 16, or 32");
  if (num_threads < 1) fail("num_threads must be >= 1");
  if (num_scalar_regs < 2 || num_scalar_regs > 32)
    fail("num_scalar_regs must be in [2, 32]");
  if (num_parallel_regs < 2 || num_parallel_regs > 32)
    fail("num_parallel_regs must be in [2, 32]");
  if (num_flag_regs < 2 || num_flag_regs > 8)
    fail("num_flag_regs must be in [2, 8]");
  if (local_mem_bytes < word_width / 8)
    fail("local_mem_bytes too small for one word");
  if (broadcast_arity < 2) fail("broadcast_arity must be >= 2");
  if (issue_width < 1 || issue_width > 8) fail("issue_width must be in [1, 8]");
  if (sched_policy != ThreadSchedPolicy::kSmt && issue_width != 1)
    fail("issue_width > 1 requires the SMT scheduling policy");
  if (instr_mem_words < 1) fail("instr_mem_words must be >= 1");
  if (scalar_mem_bytes < word_width / 8)
    fail("scalar_mem_bytes too small for one word");
  if (sim_threads < 1 || sim_threads > 256)
    fail("sim_threads must be in [1, 256]");
}

std::string MachineConfig::name() const {
  std::ostringstream os;
  os << "p" << num_pes << ".t" << effective_threads() << ".w" << word_width
     << ".k" << broadcast_arity;
  if (!pipelined_network) os << ".nonpipe";
  return os.str();
}

}  // namespace masc
