// Deterministic, seedable randomness for tests and benchmark workloads.
//
// All stochastic inputs in this repository flow through SplitMix64/Rng so
// every experiment is reproducible from its printed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace masc {

/// SplitMix64: tiny, high-quality, fully deterministic across platforms
/// (unlike std::mt19937 + std::uniform_int_distribution, whose mapping is
/// implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) for bound >= 1.
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;  // modulo bias immaterial for test workloads
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// A random machine word of the given bit width.
  Word next_word(unsigned width) {
    return static_cast<Word>(next_u64()) & low_mask_rt(width);
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  /// Vector of n random words at the given width.
  std::vector<Word> words(std::size_t n, unsigned width) {
    std::vector<Word> out(n);
    for (auto& w : out) w = next_word(width);
    return out;
  }

 private:
  static Word low_mask_rt(unsigned width) {
    return width == 32 ? ~Word{0} : ((Word{1} << width) - 1);
  }
  std::uint64_t state_;
};

}  // namespace masc
