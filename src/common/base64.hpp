// Standard base64 (RFC 4648, with padding), used to embed binary
// checkpoint blobs inside the JSON job journal.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace masc {

inline std::string base64_encode(const std::string& bytes) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t v =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i])) << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i + 1])) << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i + 2]));
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  const std::size_t rem = bytes.size() - i;
  if (rem == 1) {
    const auto v = static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]));
    out.push_back(kAlphabet[(v >> 2) & 63]);
    out.push_back(kAlphabet[(v << 4) & 63]);
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t v =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i])) << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i + 1]));
    out.push_back(kAlphabet[(v >> 10) & 63]);
    out.push_back(kAlphabet[(v >> 4) & 63]);
    out.push_back(kAlphabet[(v << 2) & 63]);
    out.push_back('=');
  }
  return out;
}

/// Decode; throws std::invalid_argument on characters outside the
/// alphabet or a length that is not a padded multiple of four.
inline std::string base64_decode(const std::string& text) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  if (text.size() % 4 != 0)
    throw std::invalid_argument("base64 length not a multiple of 4");
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pads = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      const char c = text[i + k];
      if (c == '=' && i + 4 == text.size() && k >= 2) {
        vals[k] = 0;
        ++pads;
      } else {
        vals[k] = value_of(c);
        if (vals[k] < 0 || pads > 0)
          throw std::invalid_argument("invalid base64 input");
      }
    }
    const std::uint32_t v = (static_cast<std::uint32_t>(vals[0]) << 18) |
                            (static_cast<std::uint32_t>(vals[1]) << 12) |
                            (static_cast<std::uint32_t>(vals[2]) << 6) |
                            static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    if (pads < 2) out.push_back(static_cast<char>((v >> 8) & 0xFF));
    if (pads < 1) out.push_back(static_cast<char>(v & 0xFF));
  }
  return out;
}

}  // namespace masc
