#include "fault/fault.hpp"

#include <cstdlib>

namespace masc::fault {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

double parse_rate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || v < 0.0 || v > 1.0)
    throw std::invalid_argument("fault plan: bad rate for " + key + ": \"" +
                                value + "\"");
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 0);
  if (end == value.c_str() || *end != '\0')
    throw std::invalid_argument("fault plan: bad integer for " + key +
                                ": \"" + value + "\"");
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("fault plan: expected key=value, got \"" +
                                  item + "\"");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") plan.seed = parse_u64(key, value);
    else if (key == "frame_drop") plan.frame_drop = parse_rate(key, value);
    else if (key == "frame_truncate") plan.frame_truncate = parse_rate(key, value);
    else if (key == "frame_delay") plan.frame_delay = parse_rate(key, value);
    else if (key == "frame_delay_ms")
      plan.frame_delay_ms = static_cast<std::uint32_t>(parse_u64(key, value));
    else if (key == "dispatch_fail") plan.dispatch_fail = parse_rate(key, value);
    else if (key == "chunk_kill") plan.chunk_kill = parse_rate(key, value);
    else if (key == "chunk_kill_at") plan.chunk_kill_at = parse_u64(key, value);
    else if (key == "backend_fail") plan.backend_fail = parse_rate(key, value);
    else if (key == "backend_fail_at") plan.backend_fail_at = parse_u64(key, value);
    else if (key == "cache_disk_fail") plan.cache_disk_fail = parse_rate(key, value);
    else if (key == "cache_disk_fail_at") plan.cache_disk_fail_at = parse_u64(key, value);
    else if (key == "max_faults") plan.max_faults = parse_u64(key, value);
    else
      throw std::invalid_argument("fault plan: unknown key \"" + key + "\"");
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      // Independent streams per category: the decision sequence at one
      // hook site is unaffected by how often the other sites fire.
      frame_rng_(plan.seed ^ 0x66726d65ULL),
      dispatch_rng_(plan.seed ^ 0x64737063ULL),
      chunk_rng_(plan.seed ^ 0x63686e6bULL),
      backend_rng_(plan.seed ^ 0x626b6e64ULL),
      cache_disk_rng_(plan.seed ^ 0x6364736bULL) {}

bool FaultInjector::fire(double rate, Rng& rng) {
  if (rate <= 0.0) return false;
  if (counts_.total() >= plan_.max_faults) return false;
  // Draw even at rate >= 1 so the decision index advances uniformly.
  const double u =
      static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;  // [0, 1)
  return u < rate;
}

FrameFault FaultInjector::on_frame_send() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fire(plan_.frame_drop, frame_rng_)) {
    ++counts_.frames_dropped;
    return FrameFault::kDrop;
  }
  if (fire(plan_.frame_truncate, frame_rng_)) {
    ++counts_.frames_truncated;
    return FrameFault::kTruncate;
  }
  if (fire(plan_.frame_delay, frame_rng_)) {
    ++counts_.frames_delayed;
    return FrameFault::kDelay;
  }
  return FrameFault::kNone;
}

bool FaultInjector::on_dispatch() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fire(plan_.dispatch_fail, dispatch_rng_)) {
    ++counts_.dispatches_failed;
    return true;
  }
  return false;
}

bool FaultInjector::on_chunk() {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = ++chunk_counter_;
  if (plan_.chunk_kill_at != 0 && index == plan_.chunk_kill_at &&
      counts_.total() < plan_.max_faults) {
    ++counts_.chunks_killed;
    return true;
  }
  if (fire(plan_.chunk_kill, chunk_rng_)) {
    ++counts_.chunks_killed;
    return true;
  }
  return false;
}

bool FaultInjector::on_backend_request() {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = ++backend_counter_;
  // Unlike chunk_kill_at, *every* request from the trigger index on
  // fails (budgeted by max_faults): a breaker only opens on
  // consecutive failures, so a one-shot fault could never trip it.
  if (plan_.backend_fail_at != 0 && index >= plan_.backend_fail_at &&
      counts_.total() < plan_.max_faults) {
    ++counts_.backend_requests_failed;
    return true;
  }
  if (fire(plan_.backend_fail, backend_rng_)) {
    ++counts_.backend_requests_failed;
    return true;
  }
  return false;
}

bool FaultInjector::on_cache_disk_write() {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = ++cache_disk_counter_;
  // backend_fail_at semantics: every write from the trigger index on
  // fails (budgeted by max_faults) — a disk does not un-fill itself, and
  // the degraded path is only proven if writes stay broken.
  if (plan_.cache_disk_fail_at != 0 && index >= plan_.cache_disk_fail_at &&
      counts_.total() < plan_.max_faults) {
    ++counts_.cache_disk_failures;
    return true;
  }
  if (fire(plan_.cache_disk_fail, cache_disk_rng_)) {
    ++counts_.cache_disk_failures;
    return true;
  }
  return false;
}

FaultCounts FaultInjector::counts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

void install(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* active() {
  return g_injector.load(std::memory_order_relaxed);
}

}  // namespace masc::fault
