// Deterministic fault injection for the serving stack.
//
// The resilience layer (journal, checkpoint/restore, client retry) is
// only trustworthy if every recovery path can be exercised on demand.
// This subsystem provides that: a seeded FaultPlan drives a
// FaultInjector whose decisions are a pure function of (seed, per-site
// decision index), so a failing fault run reproduces exactly from its
// printed plan. Hook sites live in serve/protocol.cpp (frame
// drop/delay/truncation), serve/server.cpp (dispatch failures), and
// sim/sweep.cpp (worker chunk kills).
//
// Cost when disabled: each hook site is one relaxed atomic load of a
// null pointer — nothing else. Installation is process-global and meant
// for tests and the masc-served --fault flag, not for concurrent
// injectors.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/random.hpp"

namespace masc::fault {

/// Thrown at a hook site when the injector kills the operation outright
/// (chunk kills, truncated frame writes).
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What to do with one outgoing protocol frame.
enum class FrameFault : std::uint8_t {
  kNone,      ///< deliver normally
  kDrop,      ///< swallow the frame: the peer never sees it
  kTruncate,  ///< send the header and a partial payload, then fail
  kDelay,     ///< deliver after FaultPlan::frame_delay_ms
};

/// Declarative fault schedule. Rates are probabilities in [0, 1];
/// `chunk_kill_at` names one absolute sweep-chunk index (1-based,
/// counted across the injector's lifetime) to kill deterministically.
/// `max_faults` caps the total number of injected faults so that
/// retry-based recovery always converges in tests.
struct FaultPlan {
  std::uint64_t seed = 0;
  double frame_drop = 0.0;
  double frame_truncate = 0.0;
  double frame_delay = 0.0;
  std::uint32_t frame_delay_ms = 5;
  double dispatch_fail = 0.0;
  double chunk_kill = 0.0;
  std::uint64_t chunk_kill_at = 0;
  /// Router-side hook (cluster/router.cpp): probability that one
  /// router→backend request is failed before touching the socket, as if
  /// the backend were unreachable. `backend_fail_at` instead names one
  /// absolute backend-request index (1-based) to start failing at, and
  /// every subsequent request also fails until max_faults runs out —
  /// the deterministic way to drive a breaker open in tests.
  double backend_fail = 0.0;
  std::uint64_t backend_fail_at = 0;
  /// Cache-store hook (common/cache_store.cpp): probability that one L2
  /// disk write is failed before touching the file, as if the disk were
  /// full. `cache_disk_fail_at` names the first write index (1-based) to
  /// fail at, and every later write also fails until max_faults runs
  /// out — writes must *stay* broken to prove the store degrades to
  /// simulation instead of erroring (docs/CACHE.md).
  double cache_disk_fail = 0.0;
  std::uint64_t cache_disk_fail_at = 0;
  std::uint64_t max_faults = ~std::uint64_t{0};

  /// Parse "key=value,key=value" specs, e.g.
  /// "seed=7,frame_drop=0.2,chunk_kill_at=3,max_faults=10".
  /// Throws std::invalid_argument on unknown keys or bad values.
  static FaultPlan parse(const std::string& spec);
};

/// Injected-fault tallies (for assertions and operator logs).
struct FaultCounts {
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_truncated = 0;
  std::uint64_t frames_delayed = 0;
  std::uint64_t dispatches_failed = 0;
  std::uint64_t chunks_killed = 0;
  std::uint64_t backend_requests_failed = 0;
  std::uint64_t cache_disk_failures = 0;
  std::uint64_t total() const {
    return frames_dropped + frames_truncated + frames_delayed +
           dispatches_failed + chunks_killed + backend_requests_failed +
           cache_disk_failures;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Decide the fate of one outgoing frame.
  FrameFault on_frame_send();
  /// True when one batch dispatch should be bounced back to the queue.
  bool on_dispatch();
  /// Advances the global chunk counter; true when this chunk must die.
  bool on_chunk();
  /// Advances the backend-request counter; true when the router must
  /// treat this backend request as failed (see FaultPlan::backend_fail).
  bool on_backend_request();
  /// Advances the cache-disk-write counter; true when the cache store
  /// must fail this append (see FaultPlan::cache_disk_fail).
  bool on_cache_disk_write();

  FaultCounts counts() const;

 private:
  bool fire(double rate, Rng& rng);

  const FaultPlan plan_;
  mutable std::mutex mu_;
  Rng frame_rng_;
  Rng dispatch_rng_;
  Rng chunk_rng_;
  Rng backend_rng_;
  Rng cache_disk_rng_;
  std::uint64_t chunk_counter_ = 0;
  std::uint64_t backend_counter_ = 0;
  std::uint64_t cache_disk_counter_ = 0;
  FaultCounts counts_;
};

/// Install (or, with nullptr, remove) the process-global injector. The
/// caller keeps ownership and must uninstall before destroying it.
void install(FaultInjector* injector);

/// The installed injector, or nullptr. Hook sites call this first; the
/// nullptr fast path is a single relaxed atomic load.
FaultInjector* active();

/// RAII installation for tests: installs an injector built from `plan`
/// for the scope's lifetime.
class ScopedInjector {
 public:
  explicit ScopedInjector(const FaultPlan& plan) : injector_(plan) {
    install(&injector_);
  }
  ~ScopedInjector() { install(nullptr); }
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

  FaultInjector& operator*() { return injector_; }
  FaultInjector* operator->() { return &injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace masc::fault
