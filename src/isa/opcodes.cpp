#include "isa/opcodes.hpp"

namespace masc {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kSys: return "sys";
    case Opcode::kSAlu: return "salu";
    case Opcode::kSCmp: return "scmp";
    case Opcode::kSFlag: return "sflag";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlti: return "slti";
    case Opcode::kSltiu: return "sltiu";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kLui: return "lui";
    case Opcode::kLw: return "lw";
    case Opcode::kSw: return "sw";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kBfset: return "bfset";
    case Opcode::kBfclr: return "bfclr";
    case Opcode::kJ: return "j";
    case Opcode::kJal: return "jal";
    case Opcode::kJr: return "jr";
    case Opcode::kPAlu: return "palu";
    case Opcode::kPAluS: return "palus";
    case Opcode::kPImm: return "pimm";
    case Opcode::kPCmp: return "pcmp";
    case Opcode::kPCmpS: return "pcmps";
    case Opcode::kPFlag: return "pflag";
    case Opcode::kPLw: return "plw";
    case Opcode::kPSw: return "psw";
    case Opcode::kPMov: return "pmov";
    case Opcode::kRed: return "red";
    case Opcode::kRSel: return "rsel";
    case Opcode::kTCtl: return "tctl";
    case Opcode::kTMov: return "tmov";
    case Opcode::kOpcodeCount: break;
  }
  return "?op";
}

const char* to_string(SysFunct f) {
  switch (f) {
    case SysFunct::kNop: return "nop";
    case SysFunct::kHalt: return "halt";
    case SysFunct::kCount: break;
  }
  return "?sys";
}

const char* to_string(AluFunct f) {
  switch (f) {
    case AluFunct::kAdd: return "add";
    case AluFunct::kSub: return "sub";
    case AluFunct::kAnd: return "and";
    case AluFunct::kOr: return "or";
    case AluFunct::kXor: return "xor";
    case AluFunct::kNor: return "nor";
    case AluFunct::kSll: return "sll";
    case AluFunct::kSrl: return "srl";
    case AluFunct::kSra: return "sra";
    case AluFunct::kSlt: return "slt";
    case AluFunct::kSltu: return "sltu";
    case AluFunct::kMul: return "mul";
    case AluFunct::kDiv: return "div";
    case AluFunct::kRem: return "rem";
    case AluFunct::kDivU: return "divu";
    case AluFunct::kRemU: return "remu";
    case AluFunct::kMov: return "mov";
    case AluFunct::kCount: break;
  }
  return "?alu";
}

const char* to_string(CmpFunct f) {
  switch (f) {
    case CmpFunct::kEq: return "eq";
    case CmpFunct::kNe: return "ne";
    case CmpFunct::kLt: return "lt";
    case CmpFunct::kLe: return "le";
    case CmpFunct::kLtu: return "ltu";
    case CmpFunct::kLeu: return "leu";
    case CmpFunct::kGt: return "gt";
    case CmpFunct::kGe: return "ge";
    case CmpFunct::kGtu: return "gtu";
    case CmpFunct::kGeu: return "geu";
    case CmpFunct::kCount: break;
  }
  return "?cmp";
}

const char* to_string(FlagFunct f) {
  switch (f) {
    case FlagFunct::kAnd: return "fand";
    case FlagFunct::kOr: return "for";
    case FlagFunct::kXor: return "fxor";
    case FlagFunct::kAndNot: return "fandn";
    case FlagFunct::kNot: return "fnot";
    case FlagFunct::kMov: return "fmov";
    case FlagFunct::kSet: return "fset";
    case FlagFunct::kClr: return "fclr";
    case FlagFunct::kCount: break;
  }
  return "?flag";
}

const char* to_string(RedFunct f) {
  switch (f) {
    case RedFunct::kAnd: return "rand";
    case RedFunct::kOr: return "ror";
    case RedFunct::kMax: return "rmax";
    case RedFunct::kMin: return "rmin";
    case RedFunct::kMaxU: return "rmaxu";
    case RedFunct::kMinU: return "rminu";
    case RedFunct::kSum: return "rsum";
    case RedFunct::kSumU: return "rsumu";
    case RedFunct::kCount_: return "rcount";
    case RedFunct::kAny: return "rany";
    case RedFunct::kFAnd: return "rfand";
    case RedFunct::kFOr: return "rfor";
    case RedFunct::kGetPe: return "getpe";
    case RedFunct::kCount: break;
  }
  return "?red";
}

const char* to_string(RSelFunct f) {
  switch (f) {
    case RSelFunct::kFirst: return "rsel";
    case RSelFunct::kClearFirst: return "rstep";
    case RSelFunct::kCount: break;
  }
  return "?rsel";
}

const char* to_string(TCtlFunct f) {
  switch (f) {
    case TCtlFunct::kSpawn: return "tspawn";
    case TCtlFunct::kJoin: return "tjoin";
    case TCtlFunct::kExit: return "texit";
    case TCtlFunct::kTid: return "tid";
    case TCtlFunct::kNPes: return "npes";
    case TCtlFunct::kNThreads: return "nthreads";
    case TCtlFunct::kCount: break;
  }
  return "?tctl";
}

const char* to_string(TMovFunct f) {
  switch (f) {
    case TMovFunct::kPut: return "tput";
    case TMovFunct::kGet: return "tget";
    case TMovFunct::kCount: break;
  }
  return "?tmov";
}

const char* to_string(PMovFunct f) {
  switch (f) {
    case PMovFunct::kBcast: return "pbcast";
    case PMovFunct::kIndex: return "pindex";
    case PMovFunct::kCount: break;
  }
  return "?pmov";
}

}  // namespace masc
