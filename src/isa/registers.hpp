// Architectural register spaces.
//
// Paper §6.1/§6.2: per-thread scalar GPRs in the control unit; per-thread
// parallel GPRs and 1-bit flag registers in each PE; scalar flags in the
// control unit. Registers are *split* between threads at the hardware
// level (a thread can only touch its own, except via TPUT/TGET).
//
// Hardwired conventions (documented in docs/ISA.md):
//   - scalar GPR r0 and parallel GPR p0 read as 0; writes are discarded.
//   - scalar flag sf0 and parallel flag pf0 read as 1; writes are
//     discarded. A parallel instruction with mask = pf0 is unconditional
//     ("all PEs active"), which is why 0 is the default mask field.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace masc {

/// The four architectural register spaces.
enum class RegSpace : std::uint8_t {
  kScalarGpr,
  kScalarFlag,
  kParallelGpr,
  kParallelFlag,
};

/// A register reference within one thread's context.
struct RegRef {
  RegSpace space = RegSpace::kScalarGpr;
  RegNum num = 0;

  /// True for the hardwired registers that can never carry a dependency.
  bool hardwired() const { return num == 0; }

  bool operator==(const RegRef&) const = default;
};

const char* to_string(RegSpace s);

}  // namespace masc
