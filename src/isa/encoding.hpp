// Binary instruction formats.
//
//   R  format: [31:26] op  [25:21] rd  [20:16] rs  [15:11] rt
//              [10:8]  mask  [7:0] funct
//   I  format: [31:26] op  [25:21] rd  [20:16] rs  [15:0] imm16 (signed)
//   PI format: [31:26] op  [25:21] rd  [20:16] rs  [15:13] mask
//              [12:9] subop  [8:0] imm9 (signed)
//   J  format: [31:26] op  [25:0] target26
#pragma once

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace masc {

/// Which binary format an opcode uses.
enum class InstrFormat : std::uint8_t { kR, kI, kPI, kJ };

InstrFormat format_of(Opcode op);

/// Encode a decoded instruction into its 32-bit word.
/// Throws DecodeError if a field is out of range for the format.
InstrWord encode(const Instruction& instr);

/// Decode a 32-bit word. Throws DecodeError on illegal opcode/funct.
Instruction decode(InstrWord word);

/// Textual disassembly (assembler syntax) of a decoded instruction.
std::string disassemble(const Instruction& instr);

}  // namespace masc
