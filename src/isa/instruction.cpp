#include "isa/instruction.hpp"

namespace masc {

InstrClass Instruction::instr_class() const {
  switch (op) {
    case Opcode::kPAlu:
    case Opcode::kPAluS:
    case Opcode::kPImm:
    case Opcode::kPCmp:
    case Opcode::kPCmpS:
    case Opcode::kPFlag:
    case Opcode::kPLw:
    case Opcode::kPSw:
    case Opcode::kPMov:
      return InstrClass::kParallel;
    case Opcode::kRed:
    case Opcode::kRSel:
      return InstrClass::kReduction;
    default:
      return InstrClass::kScalar;
  }
}

bool Instruction::is_branch() const {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kBfset:
    case Opcode::kBfclr:
    case Opcode::kJ:
    case Opcode::kJal:
    case Opcode::kJr:
      return true;
    default:
      return false;
  }
}

bool Instruction::has_parallel_dest() const { return op == Opcode::kRSel; }

namespace ir {

namespace {
Instruction make(Opcode op, std::uint8_t funct, RegNum rd, RegNum rs, RegNum rt,
                 RegNum mask, std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.funct = funct;
  i.rd = rd;
  i.rs = rs;
  i.rt = rt;
  i.mask = mask;
  i.imm = imm;
  return i;
}
}  // namespace

Instruction nop() {
  return make(Opcode::kSys, static_cast<std::uint8_t>(SysFunct::kNop), 0, 0, 0, 0, 0);
}
Instruction halt() {
  return make(Opcode::kSys, static_cast<std::uint8_t>(SysFunct::kHalt), 0, 0, 0, 0, 0);
}
Instruction salu(AluFunct f, RegNum rd, RegNum rs, RegNum rt) {
  return make(Opcode::kSAlu, static_cast<std::uint8_t>(f), rd, rs, rt, 0, 0);
}
Instruction scmp(CmpFunct f, RegNum fd, RegNum rs, RegNum rt) {
  return make(Opcode::kSCmp, static_cast<std::uint8_t>(f), fd, rs, rt, 0, 0);
}
Instruction sflag(FlagFunct f, RegNum fd, RegNum fs, RegNum ft) {
  return make(Opcode::kSFlag, static_cast<std::uint8_t>(f), fd, fs, ft, 0, 0);
}
Instruction imm_op(Opcode op, RegNum rd, RegNum rs, std::int32_t imm) {
  return make(op, 0, rd, rs, 0, 0, imm);
}
Instruction lw(RegNum rd, RegNum base, std::int32_t offset) {
  return make(Opcode::kLw, 0, rd, base, 0, 0, offset);
}
Instruction sw(RegNum rsrc, RegNum base, std::int32_t offset) {
  return make(Opcode::kSw, 0, rsrc, base, 0, 0, offset);
}
Instruction branch(Opcode op, RegNum a, RegNum b, std::int32_t offset) {
  return make(op, 0, a, b, 0, 0, offset);
}
Instruction branch_flag(Opcode op, RegNum flag, std::int32_t offset) {
  return make(op, 0, flag, 0, 0, 0, offset);
}
Instruction jump(Opcode op, std::int32_t target) {
  return make(op, 0, 0, 0, 0, 0, target);
}
Instruction jal(RegNum link, std::int32_t target) {
  return make(Opcode::kJal, 0, link, 0, 0, 0, target);
}
Instruction jr(RegNum rs) { return make(Opcode::kJr, 0, 0, rs, 0, 0, 0); }
Instruction palu(AluFunct f, RegNum rd, RegNum rs, RegNum rt, RegNum mask) {
  return make(Opcode::kPAlu, static_cast<std::uint8_t>(f), rd, rs, rt, mask, 0);
}
Instruction palus(AluFunct f, RegNum rd, RegNum scalar_rs, RegNum rt, RegNum mask) {
  return make(Opcode::kPAluS, static_cast<std::uint8_t>(f), rd, scalar_rs, rt, mask, 0);
}
Instruction pimm(PImmOp sub, RegNum rd, RegNum rs, std::int32_t imm9, RegNum mask) {
  return make(Opcode::kPImm, static_cast<std::uint8_t>(sub), rd, rs, 0, mask, imm9);
}
Instruction pcmp(CmpFunct f, RegNum fd, RegNum rs, RegNum rt, RegNum mask) {
  return make(Opcode::kPCmp, static_cast<std::uint8_t>(f), fd, rs, rt, mask, 0);
}
Instruction pcmps(CmpFunct f, RegNum fd, RegNum scalar_rs, RegNum rt, RegNum mask) {
  return make(Opcode::kPCmpS, static_cast<std::uint8_t>(f), fd, scalar_rs, rt, mask, 0);
}
Instruction pflag(FlagFunct f, RegNum fd, RegNum fs, RegNum ft, RegNum mask) {
  return make(Opcode::kPFlag, static_cast<std::uint8_t>(f), fd, fs, ft, mask, 0);
}
Instruction plw(RegNum rd, RegNum base, std::int32_t offset, RegNum mask) {
  return make(Opcode::kPLw, 0, rd, base, 0, mask, offset);
}
Instruction psw(RegNum rsrc, RegNum base, std::int32_t offset, RegNum mask) {
  return make(Opcode::kPSw, 0, rsrc, base, 0, mask, offset);
}
Instruction pbcast(RegNum prd, RegNum srs, RegNum mask) {
  return make(Opcode::kPMov, static_cast<std::uint8_t>(PMovFunct::kBcast), prd, srs, 0, mask, 0);
}
Instruction pindex(RegNum prd, RegNum mask) {
  return make(Opcode::kPMov, static_cast<std::uint8_t>(PMovFunct::kIndex), prd, 0, 0, mask, 0);
}
Instruction red(RedFunct f, RegNum rd, RegNum rs, RegNum rt, RegNum mask) {
  return make(Opcode::kRed, static_cast<std::uint8_t>(f), rd, rs, rt, mask, 0);
}
Instruction rsel(RSelFunct f, RegNum fd, RegNum fs, RegNum mask) {
  return make(Opcode::kRSel, static_cast<std::uint8_t>(f), fd, fs, 0, mask, 0);
}
Instruction tctl(TCtlFunct f, RegNum rd, RegNum rs) {
  return make(Opcode::kTCtl, static_cast<std::uint8_t>(f), rd, rs, 0, 0, 0);
}
Instruction tmov(TMovFunct f, RegNum rd, RegNum rs, RegNum rt) {
  return make(Opcode::kTMov, static_cast<std::uint8_t>(f), rd, rs, rt, 0, 0);
}

}  // namespace ir
}  // namespace masc
