#include "isa/operands.hpp"

namespace masc {

const char* to_string(RegSpace s) {
  switch (s) {
    case RegSpace::kScalarGpr: return "sgpr";
    case RegSpace::kScalarFlag: return "sflag";
    case RegSpace::kParallelGpr: return "pgpr";
    case RegSpace::kParallelFlag: return "pflag";
  }
  return "?space";
}

namespace {

/// Shift-family PImm subops read only rs; kMovi reads nothing.
bool pimm_reads_rs(PImmOp sub) { return sub != PImmOp::kMovi; }

void add_mask_read(OperandInfo& info, const Instruction& in) {
  // The activity mask is read in the PEs at the PR stage. Mask flag 0 is
  // hardwired to 1 and carries no dependency, but we record it uniformly;
  // the scoreboard skips hardwired refs.
  info.add_read(RegSpace::kParallelFlag, in.mask, ReadPoint::kParallelRead);
}

}  // namespace

OperandInfo operands_of(const Instruction& in) {
  OperandInfo info;
  const auto funct = in.funct;
  switch (in.op) {
    case Opcode::kSys:
      break;

    case Opcode::kSAlu: {
      const auto f = static_cast<AluFunct>(funct);
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      if (f != AluFunct::kMov)
        info.add_read(RegSpace::kScalarGpr, in.rt, ReadPoint::kScalarEx);
      info.write = RegRef{RegSpace::kScalarGpr, in.rd};
      info.uses_scalar_mul = (f == AluFunct::kMul);
      info.uses_scalar_div = alu_uses_div(f);
      break;
    }

    case Opcode::kSCmp:
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      info.add_read(RegSpace::kScalarGpr, in.rt, ReadPoint::kScalarEx);
      info.write = RegRef{RegSpace::kScalarFlag, in.rd};
      break;

    case Opcode::kSFlag: {
      const auto f = static_cast<FlagFunct>(funct);
      if (f != FlagFunct::kSet && f != FlagFunct::kClr) {
        info.add_read(RegSpace::kScalarFlag, in.rs, ReadPoint::kScalarEx);
        if (f == FlagFunct::kAnd || f == FlagFunct::kOr ||
            f == FlagFunct::kXor || f == FlagFunct::kAndNot)
          info.add_read(RegSpace::kScalarFlag, in.rt, ReadPoint::kScalarEx);
      }
      info.write = RegRef{RegSpace::kScalarFlag, in.rd};
      break;
    }

    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlti: case Opcode::kSltiu:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      info.write = RegRef{RegSpace::kScalarGpr, in.rd};
      break;

    case Opcode::kLui:
      info.write = RegRef{RegSpace::kScalarGpr, in.rd};
      break;

    case Opcode::kLw:
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      info.write = RegRef{RegSpace::kScalarGpr, in.rd};
      break;

    case Opcode::kSw:
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      info.add_read(RegSpace::kScalarGpr, in.rd, ReadPoint::kScalarEx);
      break;

    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      info.add_read(RegSpace::kScalarGpr, in.rd, ReadPoint::kScalarEx);
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      break;

    case Opcode::kBfset: case Opcode::kBfclr:
      info.add_read(RegSpace::kScalarFlag, in.rd, ReadPoint::kScalarEx);
      break;

    case Opcode::kJ:
      break;
    case Opcode::kJal:
      info.write = RegRef{RegSpace::kScalarGpr, in.rd};
      break;
    case Opcode::kJr:
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      break;

    case Opcode::kPAlu: {
      const auto f = static_cast<AluFunct>(funct);
      info.add_read(RegSpace::kParallelGpr, in.rs, ReadPoint::kParallelRead);
      if (f != AluFunct::kMov)
        info.add_read(RegSpace::kParallelGpr, in.rt, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelGpr, in.rd};
      info.uses_pe_mul = (f == AluFunct::kMul);
      info.uses_pe_div = alu_uses_div(f);
      break;
    }

    case Opcode::kPAluS: {
      const auto f = static_cast<AluFunct>(funct);
      // The scalar operand is consumed at B1 (it rides the broadcast
      // network); this is the operand the EX->B1 forwarding path feeds.
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kBroadcast);
      if (f != AluFunct::kMov)
        info.add_read(RegSpace::kParallelGpr, in.rt, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelGpr, in.rd};
      info.uses_pe_mul = (f == AluFunct::kMul);
      info.uses_pe_div = alu_uses_div(f);
      break;
    }

    case Opcode::kPImm:
      if (pimm_reads_rs(static_cast<PImmOp>(funct)))
        info.add_read(RegSpace::kParallelGpr, in.rs, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelGpr, in.rd};
      break;

    case Opcode::kPCmp:
      info.add_read(RegSpace::kParallelGpr, in.rs, ReadPoint::kParallelRead);
      info.add_read(RegSpace::kParallelGpr, in.rt, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelFlag, in.rd};
      break;

    case Opcode::kPCmpS:
      info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kBroadcast);
      info.add_read(RegSpace::kParallelGpr, in.rt, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelFlag, in.rd};
      break;

    case Opcode::kPFlag: {
      const auto f = static_cast<FlagFunct>(funct);
      if (f != FlagFunct::kSet && f != FlagFunct::kClr) {
        info.add_read(RegSpace::kParallelFlag, in.rs, ReadPoint::kParallelRead);
        if (f == FlagFunct::kAnd || f == FlagFunct::kOr ||
            f == FlagFunct::kXor || f == FlagFunct::kAndNot)
          info.add_read(RegSpace::kParallelFlag, in.rt, ReadPoint::kParallelRead);
      }
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelFlag, in.rd};
      break;
    }

    case Opcode::kPLw:
      info.add_read(RegSpace::kParallelGpr, in.rs, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelGpr, in.rd};
      break;

    case Opcode::kPSw:
      info.add_read(RegSpace::kParallelGpr, in.rs, ReadPoint::kParallelRead);
      info.add_read(RegSpace::kParallelGpr, in.rd, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      break;

    case Opcode::kPMov:
      if (static_cast<PMovFunct>(funct) == PMovFunct::kBcast)
        info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kBroadcast);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelGpr, in.rd};
      break;

    case Opcode::kRed: {
      const auto f = static_cast<RedFunct>(funct);
      switch (f) {
        case RedFunct::kCount_:
        case RedFunct::kAny:
          info.add_read(RegSpace::kParallelFlag, in.rs, ReadPoint::kParallelRead);
          info.write = RegRef{RegSpace::kScalarGpr, in.rd};
          break;
        case RedFunct::kFAnd:
        case RedFunct::kFOr:
          info.add_read(RegSpace::kParallelFlag, in.rs, ReadPoint::kParallelRead);
          info.write = RegRef{RegSpace::kScalarFlag, in.rd};
          break;
        case RedFunct::kGetPe:
          info.add_read(RegSpace::kParallelGpr, in.rs, ReadPoint::kParallelRead);
          info.add_read(RegSpace::kScalarGpr, in.rt, ReadPoint::kBroadcast);
          info.write = RegRef{RegSpace::kScalarGpr, in.rd};
          break;
        default:
          info.add_read(RegSpace::kParallelGpr, in.rs, ReadPoint::kParallelRead);
          info.write = RegRef{RegSpace::kScalarGpr, in.rd};
          break;
      }
      add_mask_read(info, in);
      break;
    }

    case Opcode::kRSel:
      info.add_read(RegSpace::kParallelFlag, in.rs, ReadPoint::kParallelRead);
      add_mask_read(info, in);
      info.write = RegRef{RegSpace::kParallelFlag, in.rd};
      break;

    case Opcode::kTCtl: {
      const auto f = static_cast<TCtlFunct>(funct);
      switch (f) {
        case TCtlFunct::kSpawn:
          info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
          info.write = RegRef{RegSpace::kScalarGpr, in.rd};
          break;
        case TCtlFunct::kJoin:
          info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
          break;
        case TCtlFunct::kExit:
          break;
        default:  // kTid, kNPes, kNThreads
          info.write = RegRef{RegSpace::kScalarGpr, in.rd};
          break;
      }
      break;
    }

    case Opcode::kTMov:
      // Both forms read the target-thread selector rt. TPUT additionally
      // reads the local source rs; TGET's read of the *remote* rs and
      // TPUT's write of the *remote* rd are registered dynamically by the
      // scoreboard once the target thread id is known at issue.
      info.add_read(RegSpace::kScalarGpr, in.rt, ReadPoint::kScalarEx);
      if (static_cast<TMovFunct>(funct) == TMovFunct::kPut)
        info.add_read(RegSpace::kScalarGpr, in.rs, ReadPoint::kScalarEx);
      else
        info.write = RegRef{RegSpace::kScalarGpr, in.rd};
      break;

    case Opcode::kOpcodeCount:
      break;
  }
  return info;
}

}  // namespace masc
