// Opcode and function-code enumerations for the MASC ISA.
//
// The paper (§6.1) specifies the ISA at the level of instruction classes:
// a MIPS-like RISC load-store architecture with
//   - scalar and parallel forms of arithmetic/logic/comparison,
//   - a broadcast-scalar operand form for most parallel instructions,
//   - reductions (AND/OR, MAX/MIN, saturating SUM, responder COUNT) and a
//     multiple-response resolver,
//   - 1-bit flags as a first-class data type with their own registers and
//     instructions,
//   - thread allocate/release and inter-thread data transfer.
// This header concretizes those classes into a 32-bit fixed encoding
// (see docs/ISA.md for the programmer-level description).
#pragma once

#include <cstdint>

namespace masc {

/// Primary opcode, bits [31:26] of every instruction word.
enum class Opcode : std::uint8_t {
  // System / scalar register-register (R format)
  kSys = 0,    ///< funct = SysFunct (NOP, HALT)
  kSAlu,       ///< scalar ALU reg-reg; funct = AluFunct
  kSCmp,       ///< scalar compare -> scalar flag rd; funct = CmpFunct
  kSFlag,      ///< scalar flag logic; rd/rs/rt are flag regs; funct = FlagFunct

  // Scalar immediate (I format)
  kAddi, kAndi, kOri, kXori, kSlti, kSltiu, kSlli, kSrli, kSrai, kLui,

  // Scalar memory (I format)
  kLw, kSw,

  // Control flow (I format except kJ/kJal = J format, kJr = R format)
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kBfset,  ///< branch if scalar flag rd is set
  kBfclr,  ///< branch if scalar flag rd is clear
  kJ, kJal, kJr,

  // Parallel (R format with mask field, or PI format)
  kPAlu,   ///< parallel reg-reg; funct = AluFunct
  kPAluS,  ///< parallel with broadcast scalar: rs is a *scalar* register
  kPImm,   ///< PI format; subop = PImmOp
  kPCmp,   ///< parallel compare -> parallel flag rd; funct = CmpFunct
  kPCmpS,  ///< parallel compare vs broadcast scalar rs; funct = CmpFunct
  kPFlag,  ///< parallel flag logic; funct = FlagFunct
  kPLw,    ///< parallel load:  prd <- localmem[prs + imm9]   (PI format)
  kPSw,    ///< parallel store: localmem[prs + imm9] <- prd   (PI format)
  kPMov,   ///< funct = PMovFunct (BCAST, INDEX)

  // Reduction (R format with mask field)
  kRed,    ///< funct = RedFunct; rd scalar dest (GPR or flag), rs parallel src
  kRSel,   ///< multiple-response resolver; funct = RSelFunct;
           ///< rd/rs parallel flag regs, *parallel* destination

  // Multithreading (R format)
  kTCtl,   ///< funct = TCtlFunct (SPAWN, JOIN, EXIT, TID, NPES, NTHREADS)
  kTMov,   ///< funct = TMovFunct (PUT, GET): inter-thread register transfer

  kOpcodeCount
};

/// funct codes for Opcode::kSys.
enum class SysFunct : std::uint8_t { kNop = 0, kHalt, kCount };

/// funct codes for scalar and parallel ALU operations.
enum class AluFunct : std::uint8_t {
  kAdd = 0, kSub, kAnd, kOr, kXor, kNor,
  kSll, kSrl, kSra,
  kSlt, kSltu,
  kMul, kDiv, kRem,
  kDivU, kRemU,
  kMov,  ///< rd <- rs (rt ignored)
  kCount
};

/// Does this ALU operation occupy the multiply / divide unit?
constexpr bool alu_uses_mul(AluFunct f) { return f == AluFunct::kMul; }
constexpr bool alu_uses_div(AluFunct f) {
  return f == AluFunct::kDiv || f == AluFunct::kRem || f == AluFunct::kDivU ||
         f == AluFunct::kRemU;
}

/// funct codes for comparisons producing flags.
enum class CmpFunct : std::uint8_t {
  kEq = 0, kNe, kLt, kLe, kLtu, kLeu, kGt, kGe, kGtu, kGeu, kCount
};

/// funct codes for flag-register logic (scalar and parallel).
enum class FlagFunct : std::uint8_t {
  kAnd = 0, kOr, kXor,
  kAndNot,  ///< rd <- rs & ~rt (responder elimination)
  kNot,     ///< rd <- ~rs
  kMov,     ///< rd <- rs
  kSet,     ///< rd <- 1
  kClr,     ///< rd <- 0
  kCount
};

/// funct codes for reduction instructions (Opcode::kRed).
enum class RedFunct : std::uint8_t {
  kAnd = 0,  ///< bitwise AND over active PEs' rs words
  kOr,       ///< bitwise OR
  kMax,      ///< signed maximum
  kMin,      ///< signed minimum
  kMaxU,     ///< unsigned maximum
  kMinU,     ///< unsigned minimum
  kSum,      ///< signed saturating sum
  kSumU,     ///< unsigned saturating sum
  kCount_,   ///< responder count: rd(GPR) <- #{active PEs with pflag[rs]=1}
  kAny,      ///< some/none: rd(GPR) <- 1 if any active PE has pflag[rs]=1
  kFAnd,     ///< flag AND-reduce: sflag[rd] <- AND of pflag[rs] (active PEs)
  kFOr,      ///< flag OR-reduce:  sflag[rd] <- OR of pflag[rs]
  kGetPe,    ///< rd(GPR) <- preg[rs] of PE number sreg[rt] (via OR tree)
  kCount
};

/// funct codes for the multiple-response resolver (Opcode::kRSel).
enum class RSelFunct : std::uint8_t {
  kFirst = 0,  ///< pflag[rd] <- one-hot first responder of pflag[rs]
  kClearFirst, ///< pflag[rd] <- pflag[rs] with the first responder cleared
  kCount
};

/// funct codes for thread control (Opcode::kTCtl).
enum class TCtlFunct : std::uint8_t {
  kSpawn = 0, ///< rd <- id of newly allocated thread starting at PC sreg[rs];
              ///< all-ones word if no context is free
  kJoin,      ///< block until thread sreg[rs] has exited
  kExit,      ///< release this thread's context
  kTid,       ///< rd <- current thread id
  kNPes,      ///< rd <- number of PEs (saturated to word width)
  kNThreads,  ///< rd <- number of hardware thread contexts
  kCount
};

/// funct codes for inter-thread register transfer (Opcode::kTMov).
enum class TMovFunct : std::uint8_t {
  kPut = 0,  ///< thread[sreg[rt]].sreg[rd] <- sreg[rs]
  kGet,      ///< sreg[rd] <- thread[sreg[rt]].sreg[rs]
  kCount
};

/// funct codes for Opcode::kPMov.
enum class PMovFunct : std::uint8_t {
  kBcast = 0, ///< prd <- sreg[rs] (pure broadcast move)
  kIndex,     ///< prd <- PE index (truncated to word width)
  kCount
};

/// subop codes for Opcode::kPImm (PI format, 4-bit field).
enum class PImmOp : std::uint8_t {
  kAddi = 0, kAndi, kOri, kXori, kSlli, kSrli, kSrai,
  kMovi,  ///< prd <- imm9 (sign-extended; rs ignored)
  kCount
};

const char* to_string(Opcode op);
const char* to_string(SysFunct f);
const char* to_string(AluFunct f);
const char* to_string(CmpFunct f);
const char* to_string(FlagFunct f);
const char* to_string(RedFunct f);
const char* to_string(RSelFunct f);
const char* to_string(TCtlFunct f);
const char* to_string(TMovFunct f);
const char* to_string(PMovFunct f);

}  // namespace masc
