// Static use/def analysis of decoded instructions.
//
// The decode unit's hazard check (paper Fig. 3, "instruction status
// table") needs to know, for each candidate instruction, which registers
// it reads, which it writes, and which shared functional units it
// occupies. This module centralizes that knowledge so the scoreboard,
// the functional simulator, and the assembler's diagnostics all agree.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "isa/instruction.hpp"
#include "isa/registers.hpp"

namespace masc {

/// Where in the pipeline a scalar-space operand is consumed; determines
/// which forwarding path can satisfy it (paper §4.2).
enum class ReadPoint : std::uint8_t {
  kScalarEx,   ///< scalar execute stage (EX)
  kBroadcast,  ///< first broadcast stage (B1) — scalar operand of a
               ///< parallel/reduction instruction
  kParallelRead, ///< parallel register read stage (PR) — parallel operands
};

/// One register read with its consumption point.
struct RegRead {
  RegRef ref;
  ReadPoint at = ReadPoint::kScalarEx;
};

/// Complete use/def summary of an instruction.
struct OperandInfo {
  std::array<RegRead, 4> reads{};  ///< up to 4 valid entries
  std::uint32_t num_reads = 0;
  std::optional<RegRef> write;     ///< at most one register result
  bool uses_scalar_mul = false;    ///< occupies the CU multiply unit
  bool uses_scalar_div = false;
  bool uses_pe_mul = false;        ///< occupies the PE multiply units
  bool uses_pe_div = false;

  void add_read(RegSpace space, RegNum num, ReadPoint at) {
    reads[num_reads++] = RegRead{RegRef{space, num}, at};
  }
};

/// Compute the use/def summary for a decoded instruction.
OperandInfo operands_of(const Instruction& instr);

}  // namespace masc
