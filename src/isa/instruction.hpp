// Decoded-instruction value type and the three-way classification from
// paper §4.1: scalar / parallel / reduction.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace masc {

/// Paper §4.1: "Instructions in a SIMD processor can be classified into
/// three types: scalar instructions execute within the control unit;
/// parallel instructions execute on the PE array and require the use of
/// the broadcast network; and reduction instructions ... require the use
/// of both the broadcast and reduction networks."
enum class InstrClass : std::uint8_t { kScalar, kParallel, kReduction };

/// A fully decoded instruction. Fields not used by a given opcode are 0.
struct Instruction {
  Opcode op = Opcode::kSys;
  std::uint8_t funct = 0;   ///< interpretation depends on op
  RegNum rd = 0;
  RegNum rs = 0;
  RegNum rt = 0;
  RegNum mask = 0;          ///< parallel flag register used as activity mask
  std::int32_t imm = 0;     ///< sign-extended imm16 / imm9, or target26

  InstrClass instr_class() const;

  bool is_branch() const;   ///< any control transfer (branches and jumps)
  bool is_halt() const { return op == Opcode::kSys && funct == static_cast<std::uint8_t>(SysFunct::kHalt); }
  bool is_nop() const { return op == Opcode::kSys && funct == static_cast<std::uint8_t>(SysFunct::kNop); }

  /// The resolver (RSEL) is a reduction-class instruction whose result is a
  /// *parallel* flag value (paper §6.4: "Unlike the other reduction units,
  /// the output of the multiple response resolver is a parallel value").
  bool has_parallel_dest() const;

  bool operator==(const Instruction&) const = default;
};

/// Convenience constructors used by tests, kernels, and the assembler.
namespace ir {

Instruction nop();
Instruction halt();
Instruction salu(AluFunct f, RegNum rd, RegNum rs, RegNum rt);
Instruction scmp(CmpFunct f, RegNum fd, RegNum rs, RegNum rt);
Instruction sflag(FlagFunct f, RegNum fd, RegNum fs, RegNum ft);
Instruction imm_op(Opcode op, RegNum rd, RegNum rs, std::int32_t imm);
Instruction lw(RegNum rd, RegNum base, std::int32_t offset);
Instruction sw(RegNum rsrc, RegNum base, std::int32_t offset);
Instruction branch(Opcode op, RegNum a, RegNum b, std::int32_t offset);
Instruction branch_flag(Opcode op, RegNum flag, std::int32_t offset);
Instruction jump(Opcode op, std::int32_t target);
Instruction jal(RegNum link, std::int32_t target);
Instruction jr(RegNum rs);
Instruction palu(AluFunct f, RegNum rd, RegNum rs, RegNum rt, RegNum mask = 0);
Instruction palus(AluFunct f, RegNum rd, RegNum scalar_rs, RegNum rt, RegNum mask = 0);
Instruction pimm(PImmOp sub, RegNum rd, RegNum rs, std::int32_t imm9, RegNum mask = 0);
Instruction pcmp(CmpFunct f, RegNum fd, RegNum rs, RegNum rt, RegNum mask = 0);
Instruction pcmps(CmpFunct f, RegNum fd, RegNum scalar_rs, RegNum rt, RegNum mask = 0);
Instruction pflag(FlagFunct f, RegNum fd, RegNum fs, RegNum ft, RegNum mask = 0);
Instruction plw(RegNum rd, RegNum base, std::int32_t offset, RegNum mask = 0);
Instruction psw(RegNum rsrc, RegNum base, std::int32_t offset, RegNum mask = 0);
Instruction pbcast(RegNum prd, RegNum srs, RegNum mask = 0);
Instruction pindex(RegNum prd, RegNum mask = 0);
Instruction red(RedFunct f, RegNum rd, RegNum rs, RegNum rt = 0, RegNum mask = 0);
Instruction rsel(RSelFunct f, RegNum fd, RegNum fs, RegNum mask = 0);
Instruction tctl(TCtlFunct f, RegNum rd = 0, RegNum rs = 0);
Instruction tmov(TMovFunct f, RegNum rd, RegNum rs, RegNum rt);

}  // namespace ir

}  // namespace masc
