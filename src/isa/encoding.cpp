#include "isa/encoding.hpp"

#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace masc {

namespace {

constexpr unsigned kOpShift = 26;
constexpr unsigned kRdShift = 21;
constexpr unsigned kRsShift = 16;
constexpr unsigned kRtShift = 11;
constexpr unsigned kRMaskShift = 8;
constexpr unsigned kPiMaskShift = 13;
constexpr unsigned kPiSubShift = 9;

[[noreturn]] void bad(const std::string& msg) { throw DecodeError(msg); }

void check_field(std::uint32_t v, std::uint32_t max, const char* what) {
  if (v > max) bad(std::string("field out of range: ") + what);
}

void check_simm(std::int32_t v, unsigned width, const char* what) {
  const std::int32_t lo = -(1 << (width - 1));
  const std::int32_t hi = (1 << (width - 1)) - 1;
  if (v < lo || v > hi)
    bad(std::string("immediate out of range: ") + what + " = " + std::to_string(v));
}

std::uint8_t max_funct(Opcode op) {
  switch (op) {
    case Opcode::kSys: return static_cast<std::uint8_t>(SysFunct::kCount) - 1;
    case Opcode::kSAlu:
    case Opcode::kPAlu:
    case Opcode::kPAluS: return static_cast<std::uint8_t>(AluFunct::kCount) - 1;
    case Opcode::kSCmp:
    case Opcode::kPCmp:
    case Opcode::kPCmpS: return static_cast<std::uint8_t>(CmpFunct::kCount) - 1;
    case Opcode::kSFlag:
    case Opcode::kPFlag: return static_cast<std::uint8_t>(FlagFunct::kCount) - 1;
    case Opcode::kRed: return static_cast<std::uint8_t>(RedFunct::kCount) - 1;
    case Opcode::kRSel: return static_cast<std::uint8_t>(RSelFunct::kCount) - 1;
    case Opcode::kTCtl: return static_cast<std::uint8_t>(TCtlFunct::kCount) - 1;
    case Opcode::kTMov: return static_cast<std::uint8_t>(TMovFunct::kCount) - 1;
    case Opcode::kPMov: return static_cast<std::uint8_t>(PMovFunct::kCount) - 1;
    default: return 0;
  }
}

}  // namespace

InstrFormat format_of(Opcode op) {
  switch (op) {
    case Opcode::kSys:
    case Opcode::kSAlu:
    case Opcode::kSCmp:
    case Opcode::kSFlag:
    case Opcode::kJr:
    case Opcode::kPAlu:
    case Opcode::kPAluS:
    case Opcode::kPCmp:
    case Opcode::kPCmpS:
    case Opcode::kPFlag:
    case Opcode::kPMov:
    case Opcode::kRed:
    case Opcode::kRSel:
    case Opcode::kTCtl:
    case Opcode::kTMov:
      return InstrFormat::kR;
    case Opcode::kPImm:
    case Opcode::kPLw:
    case Opcode::kPSw:
      return InstrFormat::kPI;
    case Opcode::kJ:
      return InstrFormat::kJ;
    case Opcode::kJal:
      // I format: rd = link register (register counts are configurable,
      // so the link register is named explicitly), imm16 = absolute target.
      return InstrFormat::kI;
    default:
      return InstrFormat::kI;
  }
}

InstrWord encode(const Instruction& in) {
  const auto opn = static_cast<std::uint32_t>(in.op);
  if (opn >= static_cast<std::uint32_t>(Opcode::kOpcodeCount)) bad("bad opcode");
  InstrWord w = opn << kOpShift;
  switch (format_of(in.op)) {
    case InstrFormat::kR:
      check_field(in.rd, 31, "rd");
      check_field(in.rs, 31, "rs");
      check_field(in.rt, 31, "rt");
      check_field(in.mask, 7, "mask");
      check_field(in.funct, max_funct(in.op), "funct");
      w |= in.rd << kRdShift | in.rs << kRsShift | in.rt << kRtShift |
           in.mask << kRMaskShift | in.funct;
      break;
    case InstrFormat::kI:
      check_field(in.rd, 31, "rd");
      check_field(in.rs, 31, "rs");
      check_simm(in.imm, 16, "imm16");
      w |= in.rd << kRdShift | in.rs << kRsShift |
           (static_cast<std::uint32_t>(in.imm) & 0xFFFFu);
      break;
    case InstrFormat::kPI:
      check_field(in.rd, 31, "rd");
      check_field(in.rs, 31, "rs");
      check_field(in.mask, 7, "mask");
      if (in.op == Opcode::kPImm)
        check_field(in.funct, static_cast<std::uint8_t>(PImmOp::kCount) - 1, "subop");
      check_simm(in.imm, 9, "imm9");
      w |= in.rd << kRdShift | in.rs << kRsShift | in.mask << kPiMaskShift |
           static_cast<std::uint32_t>(in.funct) << kPiSubShift |
           (static_cast<std::uint32_t>(in.imm) & 0x1FFu);
      break;
    case InstrFormat::kJ:
      if (in.imm < 0 || in.imm >= (1 << 26)) bad("jump target out of range");
      w |= static_cast<std::uint32_t>(in.imm) & 0x03FFFFFFu;
      break;
  }
  return w;
}

Instruction decode(InstrWord w) {
  Instruction in;
  const std::uint32_t opn = bits(w, 31, 26);
  if (opn >= static_cast<std::uint32_t>(Opcode::kOpcodeCount))
    bad("illegal opcode " + std::to_string(opn));
  in.op = static_cast<Opcode>(opn);
  switch (format_of(in.op)) {
    case InstrFormat::kR:
      in.rd = bits(w, 25, 21);
      in.rs = bits(w, 20, 16);
      in.rt = bits(w, 15, 11);
      in.mask = bits(w, 10, 8);
      in.funct = static_cast<std::uint8_t>(bits(w, 7, 0));
      if (in.funct > max_funct(in.op))
        bad(std::string("illegal funct for ") + to_string(in.op));
      break;
    case InstrFormat::kI:
      in.rd = bits(w, 25, 21);
      in.rs = bits(w, 20, 16);
      in.imm = sign_extend(bits(w, 15, 0), 16);
      break;
    case InstrFormat::kPI:
      in.rd = bits(w, 25, 21);
      in.rs = bits(w, 20, 16);
      in.mask = bits(w, 15, 13);
      in.funct = static_cast<std::uint8_t>(bits(w, 12, 9));
      if (in.op == Opcode::kPImm &&
          in.funct > static_cast<std::uint8_t>(PImmOp::kCount) - 1)
        bad("illegal pimm subop");
      if (in.op != Opcode::kPImm) in.funct = 0;
      in.imm = sign_extend(bits(w, 8, 0), 9);
      break;
    case InstrFormat::kJ:
      in.imm = static_cast<std::int32_t>(bits(w, 25, 0));
      break;
  }
  return in;
}

namespace {

std::string sreg(RegNum r) { return "r" + std::to_string(r); }
std::string preg(RegNum r) { return "p" + std::to_string(r); }
std::string sflg(RegNum r) { return "sf" + std::to_string(r); }
std::string pflg(RegNum r) { return "pf" + std::to_string(r); }

/// Mask suffix printed only when a non-default mask flag is in use.
std::string msk(RegNum m) { return m == 0 ? "" : " ?" + pflg(m); }

}  // namespace

std::string disassemble(const Instruction& in) {
  std::ostringstream os;
  switch (in.op) {
    case Opcode::kSys:
      os << to_string(static_cast<SysFunct>(in.funct));
      break;
    case Opcode::kSAlu: {
      const auto f = static_cast<AluFunct>(in.funct);
      if (f == AluFunct::kMov)
        os << "mov " << sreg(in.rd) << ", " << sreg(in.rs);
      else
        os << to_string(f) << ' ' << sreg(in.rd) << ", " << sreg(in.rs) << ", "
           << sreg(in.rt);
      break;
    }
    case Opcode::kSCmp:
      os << 'c' << to_string(static_cast<CmpFunct>(in.funct)) << ' '
         << sflg(in.rd) << ", " << sreg(in.rs) << ", " << sreg(in.rt);
      break;
    case Opcode::kSFlag: {
      const auto f = static_cast<FlagFunct>(in.funct);
      os << 's' << to_string(f) << ' ' << sflg(in.rd);
      if (f == FlagFunct::kNot || f == FlagFunct::kMov)
        os << ", " << sflg(in.rs);
      else if (f != FlagFunct::kSet && f != FlagFunct::kClr)
        os << ", " << sflg(in.rs) << ", " << sflg(in.rt);
      break;
    }
    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlti: case Opcode::kSltiu:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
      os << to_string(in.op) << ' ' << sreg(in.rd) << ", " << sreg(in.rs)
         << ", " << in.imm;
      break;
    case Opcode::kLui:
      os << "lui " << sreg(in.rd) << ", " << in.imm;
      break;
    case Opcode::kLw:
      os << "lw " << sreg(in.rd) << ", " << in.imm << '(' << sreg(in.rs) << ')';
      break;
    case Opcode::kSw:
      os << "sw " << sreg(in.rd) << ", " << in.imm << '(' << sreg(in.rs) << ')';
      break;
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      os << to_string(in.op) << ' ' << sreg(in.rd) << ", " << sreg(in.rs)
         << ", " << in.imm;
      break;
    case Opcode::kBfset: case Opcode::kBfclr:
      os << to_string(in.op) << ' ' << sflg(in.rd) << ", " << in.imm;
      break;
    case Opcode::kJ:
      os << "j " << in.imm;
      break;
    case Opcode::kJal:
      os << "jal " << sreg(in.rd) << ", " << in.imm;
      break;
    case Opcode::kJr:
      os << "jr " << sreg(in.rs);
      break;
    case Opcode::kPAlu: {
      const auto f = static_cast<AluFunct>(in.funct);
      os << 'p' << to_string(f) << ' ' << preg(in.rd) << ", " << preg(in.rs);
      if (f != AluFunct::kMov) os << ", " << preg(in.rt);
      os << msk(in.mask);
      break;
    }
    case Opcode::kPAluS:
      os << 'p' << to_string(static_cast<AluFunct>(in.funct)) << "s "
         << preg(in.rd) << ", " << sreg(in.rs) << ", " << preg(in.rt)
         << msk(in.mask);
      break;
    case Opcode::kPImm: {
      const auto sub = static_cast<PImmOp>(in.funct);
      switch (sub) {
        case PImmOp::kAddi: os << "paddi"; break;
        case PImmOp::kAndi: os << "pandi"; break;
        case PImmOp::kOri: os << "pori"; break;
        case PImmOp::kXori: os << "pxori"; break;
        case PImmOp::kSlli: os << "pslli"; break;
        case PImmOp::kSrli: os << "psrli"; break;
        case PImmOp::kSrai: os << "psrai"; break;
        case PImmOp::kMovi: os << "pmovi"; break;
        case PImmOp::kCount: os << "?pimm"; break;
      }
      os << ' ' << preg(in.rd);
      if (sub != PImmOp::kMovi) os << ", " << preg(in.rs);
      os << ", " << in.imm << msk(in.mask);
      break;
    }
    case Opcode::kPCmp:
      os << "pc" << to_string(static_cast<CmpFunct>(in.funct)) << ' '
         << pflg(in.rd) << ", " << preg(in.rs) << ", " << preg(in.rt)
         << msk(in.mask);
      break;
    case Opcode::kPCmpS:
      os << "pc" << to_string(static_cast<CmpFunct>(in.funct)) << "s "
         << pflg(in.rd) << ", " << sreg(in.rs) << ", " << preg(in.rt)
         << msk(in.mask);
      break;
    case Opcode::kPFlag: {
      const auto f = static_cast<FlagFunct>(in.funct);
      os << 'p' << to_string(f) << ' ' << pflg(in.rd);
      if (f == FlagFunct::kNot || f == FlagFunct::kMov)
        os << ", " << pflg(in.rs);
      else if (f != FlagFunct::kSet && f != FlagFunct::kClr)
        os << ", " << pflg(in.rs) << ", " << pflg(in.rt);
      os << msk(in.mask);
      break;
    }
    case Opcode::kPLw:
      os << "plw " << preg(in.rd) << ", " << in.imm << '(' << preg(in.rs)
         << ')' << msk(in.mask);
      break;
    case Opcode::kPSw:
      os << "psw " << preg(in.rd) << ", " << in.imm << '(' << preg(in.rs)
         << ')' << msk(in.mask);
      break;
    case Opcode::kPMov:
      if (static_cast<PMovFunct>(in.funct) == PMovFunct::kBcast)
        os << "pbcast " << preg(in.rd) << ", " << sreg(in.rs) << msk(in.mask);
      else
        os << "pindex " << preg(in.rd) << msk(in.mask);
      break;
    case Opcode::kRed: {
      const auto f = static_cast<RedFunct>(in.funct);
      os << to_string(f) << ' ';
      switch (f) {
        case RedFunct::kFAnd:
        case RedFunct::kFOr:
          os << sflg(in.rd) << ", " << pflg(in.rs);
          break;
        case RedFunct::kCount_:
        case RedFunct::kAny:
          os << sreg(in.rd) << ", " << pflg(in.rs);
          break;
        case RedFunct::kGetPe:
          os << sreg(in.rd) << ", " << preg(in.rs) << ", " << sreg(in.rt);
          break;
        default:
          os << sreg(in.rd) << ", " << preg(in.rs);
          break;
      }
      os << msk(in.mask);
      break;
    }
    case Opcode::kRSel:
      os << to_string(static_cast<RSelFunct>(in.funct)) << ' ' << pflg(in.rd)
         << ", " << pflg(in.rs) << msk(in.mask);
      break;
    case Opcode::kTCtl: {
      const auto f = static_cast<TCtlFunct>(in.funct);
      os << to_string(f);
      switch (f) {
        case TCtlFunct::kSpawn: os << ' ' << sreg(in.rd) << ", " << sreg(in.rs); break;
        case TCtlFunct::kJoin: os << ' ' << sreg(in.rs); break;
        case TCtlFunct::kExit: break;
        default: os << ' ' << sreg(in.rd); break;
      }
      break;
    }
    case Opcode::kTMov:
      os << to_string(static_cast<TMovFunct>(in.funct)) << ' ' << sreg(in.rd)
         << ", " << sreg(in.rs) << ", " << sreg(in.rt);
      break;
    case Opcode::kOpcodeCount:
      os << "?";
      break;
  }
  return os.str();
}

}  // namespace masc
