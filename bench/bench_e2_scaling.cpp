// E2 — stall anatomy as the machine scales (§4.2/§5): with one thread,
// reduction-hazard idle cycles grow with log p and dominate execution;
// with 16 threads they nearly vanish. Prints the full stall breakdown.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace masc;

  bench::header("E2 — idle-cycle breakdown vs machine size, 1 vs 16 threads",
                "§4.2 hazards / §5 multithreading claim");

  constexpr unsigned kTotalWork = 2048;

  const std::uint32_t pe_counts[] = {4, 16, 64, 256, 1024};
  const std::uint32_t thread_counts[] = {1, 16};
  std::vector<SweepJob> jobs;
  for (const std::uint32_t p : pe_counts)
    for (const std::uint32_t t : thread_counts) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = t;
      jobs.push_back(bench::make_job(cfg, bench::mixed_asc_program(kTotalWork)));
    }
  const auto stats = bench::run_sweep(jobs);

  std::printf("\n%6s %8s | %10s %10s %12s %12s %10s | %8s\n", "PEs", "threads",
              "cycles", "idle", "reduction", "bcast-red", "control", "IPC");
  std::size_t next = 0;
  for (const std::uint32_t p : pe_counts) {
    for (const std::uint32_t t : thread_counts) {
      const auto& st = stats[next++];
      std::printf("%6u %8u | %10llu %10llu %12llu %12llu %10llu | %8.3f\n", p, t,
                  static_cast<unsigned long long>(st.cycles),
                  static_cast<unsigned long long>(st.idle_cycles),
                  static_cast<unsigned long long>(st.idle_by_cause[static_cast<std::size_t>(
                      StallCause::kReductionHazard)]),
                  static_cast<unsigned long long>(st.idle_by_cause[static_cast<std::size_t>(
                      StallCause::kBroadcastReductionHazard)]),
                  static_cast<unsigned long long>(st.idle_by_cause[static_cast<std::size_t>(
                      StallCause::kControlPenalty)]),
                  st.ipc());
    }
  }

  std::printf("\nreading: single-thread idle cycles are dominated by reduction\n"
              "hazards and grow with log p (the stall is b + r = Theta(log p)).\n"
              "Sixteen threads absorb nearly all of them at every machine size,\n"
              "which is the paper's scalability argument.\n");
  return 0;
}
