// E7 — ablation of the §6.4 max/min unit decision: the predecessor
// processors' bit-serial Falkoff unit vs this paper's pipelined
// comparator tree. The paper's stated reason for the tree: "In order to
// avoid stalls in the event that multiple threads attempt to perform a
// maximum or minimum operation at the same time." We measure exactly
// that: a max/min-dense workload under increasing thread counts.
#include <cstdio>

#include "arch/resource_model.hpp"
#include "bench_util.hpp"

namespace {

using namespace masc;

std::string maxmin_kernel(unsigned total_iters) {
  return R"(
main:
    nthreads r1
    li r2, 1
    la r3, worker
spawn:
    bgeu r2, r1, body
    tspawn r4, r3
    addi r2, r2, 1
    j spawn
worker:
body:
    nthreads r5
    li r6, )" + std::to_string(total_iters) + R"(
    divu r2, r6, r5
    pindex p1
    li r1, 0
loop:
    rmax r3, p1           # through the max/min unit
    padds p1, r3, p1      # keep the data moving
    rmin r4, p1
    add r7, r7, r4
    addi r1, r1, 1
    bne r1, r2, loop
    texit
)";
}

}  // namespace

int main() {
  bench::header("E7 — max/min unit ablation: Falkoff bit-serial vs pipelined tree",
                "§6.4 design decision (the previous ASC Processors used Falkoff)");

  constexpr unsigned kWork = 512;
  std::printf("\n16 PEs, 16-bit words (Falkoff latency = 16 bit-steps, tree "
              "latency = lg p = 4):\n");
  std::printf("%-26s %8s %12s %14s %10s\n", "unit", "threads", "cycles",
              "struct.stall", "IPC");
  for (const bool falkoff : {false, true}) {
    for (const std::uint32_t threads : {1u, 4u, 16u}) {
      MachineConfig cfg;
      cfg.num_pes = 16;
      cfg.word_width = 16;
      cfg.num_threads = threads;
      cfg.maxmin_unit =
          falkoff ? MaxMinUnitKind::kFalkoff : MaxMinUnitKind::kPipelinedTree;
      const auto st = bench::run_stats(cfg, maxmin_kernel(kWork));
      std::printf("%-26s %8u %12llu %14llu %10.3f\n",
                  falkoff ? "Falkoff (bit-serial)" : "pipelined tree", threads,
                  static_cast<unsigned long long>(st.cycles),
                  static_cast<unsigned long long>(st.idle_by_cause[
                      static_cast<std::size_t>(StallCause::kStructuralHazard)]),
                  st.ipc());
    }
  }

  std::printf("\nhardware cost (network LEs at the prototype shape):\n");
  for (const bool falkoff : {false, true}) {
    MachineConfig cfg;
    cfg.num_pes = 16;
    cfg.num_threads = 16;
    cfg.word_width = 8;
    cfg.multiplier = MultiplierKind::kNone;
    cfg.divider = DividerKind::kNone;
    cfg.maxmin_unit =
        falkoff ? MaxMinUnitKind::kFalkoff : MaxMinUnitKind::kPipelinedTree;
    std::printf("  %-26s %6u LEs\n",
                falkoff ? "Falkoff (bit-serial)" : "pipelined tree",
                arch::ResourceModel::estimate(cfg).network.logic_elements);
  }

  std::printf("\nreading: single-threaded, the Falkoff unit merely swaps one\n"
              "latency (w bit-steps) for another (lg p tree stages). With many\n"
              "threads its one-at-a-time operation becomes a structural wall\n"
              "while the pipelined tree accepts one op per cycle — the paper's\n"
              "stated reason for the redesign, for ~260 extra LEs.\n");
  return 0;
}
