// E1 — the paper's central performance claim (§5): fine-grain
// multithreading removes reduction-hazard stalls. A reduction-dense
// kernel (every rsum immediately consumed) runs with 1..16 threads on
// machines of 16..1024 PEs; IPC climbs toward 1 once enough threads
// exist to cover the b+r latency.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace masc;

  bench::header("E1 — IPC vs hardware threads for a reduction-dense kernel",
                "§5 claim (promised software evaluation of §9); latency = b + r");

  constexpr unsigned kTotalWork = 2048;
  const std::uint32_t pe_counts[] = {16, 64, 256, 1024};
  const std::uint32_t thread_counts[] = {1, 2, 4, 8, 16, 32};

  // The whole p × t grid is independent simulations — run it through the
  // sweep pool; results come back in grid order.
  std::vector<SweepJob> jobs;
  for (const auto p : pe_counts)
    for (const auto t : thread_counts) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = t;
      jobs.push_back(bench::make_job(cfg, bench::reduction_chain_program(kTotalWork)));
    }
  const auto stats = bench::run_sweep(jobs);

  std::printf("\n%8s |", "PEs(b+r)");
  for (const auto t : thread_counts) std::printf("  t=%-5u", t);
  std::printf("\n---------+");
  for (std::size_t i = 0; i < std::size(thread_counts); ++i) std::printf("--------");
  std::printf("\n");

  std::size_t next = 0;
  for (const auto p : pe_counts) {
    MachineConfig probe;
    probe.num_pes = p;
    probe.word_width = 16;
    const unsigned br = probe.broadcast_latency() + probe.reduction_latency();
    std::printf("%4u(%2u) |", p, br);
    for (std::size_t i = 0; i < std::size(thread_counts); ++i)
      std::printf("  %6.3f", stats[next++].ipc());
    std::printf("\n");
  }

  std::printf("\nreading: one thread sustains IPC ~ 4/(4 + b + r) (four useful\n"
              "instructions then a b+r stall); IPC approaches 1.0 once threads\n"
              ">= (b+r)/4 + 1. Larger machines need more threads — the paper's\n"
              "argument for multithreading over compile-time scheduling (§5).\n");
  return 0;
}
