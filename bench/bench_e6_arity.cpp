// E6 — broadcast tree arity study (§6.4: "The arity (k) of the tree ...
// is variable and is chosen so as to maximize system performance").
// Larger k shortens the tree (fewer broadcast stages b = ceil(log_k p))
// but each registered node drives k fanouts, so past some k the node
// delay overtakes the PE forwarding path and drags Fmax down. We sweep k
// and report b, Fmax, workload cycles, and modeled wall-clock — whose
// minimum identifies the best arity per machine size.
#include <cstdio>

#include "arch/timing_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace masc;

  bench::header("E6 — choosing the broadcast tree arity k",
                "§6.4 design statement (arity chosen to maximize performance)");

  constexpr unsigned kWork = 1024;
  for (const std::uint32_t p : {64u, 256u, 1024u}) {
    std::printf("\n%u PEs, single thread (stall-bound worst case):\n", p);
    std::printf("  %4s %4s %6s %12s %10s %12s\n", "k", "b", "b+r", "cycles",
                "Fmax", "time(us)");
    double best_time = 1e30;
    std::uint32_t best_k = 2;
    for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = 1;
      cfg.broadcast_arity = k;
      const auto st = bench::run_stats(cfg, bench::reduction_chain_program(kWork));
      const double fmax = arch::TimingModel::fmax_mhz(cfg, arch::ep2c35());
      const double us = arch::TimingModel::seconds(cfg, arch::ep2c35(),
                                                   static_cast<double>(st.cycles)) * 1e6;
      std::printf("  %4u %4u %6u %12llu %9.1fM %12.2f\n", k,
                  cfg.broadcast_latency(),
                  cfg.broadcast_latency() + cfg.reduction_latency(),
                  static_cast<unsigned long long>(st.cycles), fmax, us);
      if (us < best_time) {
        best_time = us;
        best_k = k;
      }
    }
    std::printf("  -> best arity at p=%u: k=%u\n", p, best_k);
  }

  std::printf("\nwith 16 threads the stall term nearly vanishes, so the arity\n"
              "choice shifts toward whatever keeps the clock highest:\n");
  std::printf("  %6s %4s %12s %10s %12s\n", "PEs", "k", "cycles", "Fmax", "time(us)");
  for (const std::uint32_t p : {256u, 1024u}) {
    for (const std::uint32_t k : {2u, 8u, 32u}) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = 16;
      cfg.broadcast_arity = k;
      const auto st = bench::run_stats(cfg, bench::reduction_chain_program(kWork));
      const double fmax = arch::TimingModel::fmax_mhz(cfg, arch::ep2c35());
      const double us = arch::TimingModel::seconds(cfg, arch::ep2c35(),
                                                   static_cast<double>(st.cycles)) * 1e6;
      std::printf("  %6u %4u %12llu %9.1fM %12.2f\n", p, k,
                  static_cast<unsigned long long>(st.cycles), fmax, us);
    }
  }
  return 0;
}
