// E6 — broadcast tree arity study (§6.4: "The arity (k) of the tree ...
// is variable and is chosen so as to maximize system performance").
// Larger k shortens the tree (fewer broadcast stages b = ceil(log_k p))
// but each registered node drives k fanouts, so past some k the node
// delay overtakes the PE forwarding path and drags Fmax down. We sweep k
// and report b, Fmax, workload cycles, and modeled wall-clock — whose
// minimum identifies the best arity per machine size.
#include <cstdio>

#include "arch/timing_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace masc;

  bench::header("E6 — choosing the broadcast tree arity k",
                "§6.4 design statement (arity chosen to maximize performance)");

  constexpr unsigned kWork = 1024;
  const std::uint32_t st_pes[] = {64, 256, 1024};
  const std::uint32_t st_arities[] = {2, 4, 8, 16, 32};

  // Both arity grids are independent simulations — run them as one sweep.
  std::vector<SweepJob> jobs;
  for (const std::uint32_t p : st_pes)
    for (const std::uint32_t k : st_arities) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = 1;
      cfg.broadcast_arity = k;
      jobs.push_back(bench::make_job(cfg, bench::reduction_chain_program(kWork)));
    }
  const auto stats = bench::run_sweep(jobs);

  std::size_t next = 0;
  for (const std::uint32_t p : st_pes) {
    std::printf("\n%u PEs, single thread (stall-bound worst case):\n", p);
    std::printf("  %4s %4s %6s %12s %10s %12s\n", "k", "b", "b+r", "cycles",
                "Fmax", "time(us)");
    double best_time = 1e30;
    std::uint32_t best_k = 2;
    for (const std::uint32_t k : st_arities) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = 1;
      cfg.broadcast_arity = k;
      const auto& st = stats[next++];
      const double fmax = arch::TimingModel::fmax_mhz(cfg, arch::ep2c35());
      const double us = arch::TimingModel::seconds(cfg, arch::ep2c35(),
                                                   static_cast<double>(st.cycles)) * 1e6;
      std::printf("  %4u %4u %6u %12llu %9.1fM %12.2f\n", k,
                  cfg.broadcast_latency(),
                  cfg.broadcast_latency() + cfg.reduction_latency(),
                  static_cast<unsigned long long>(st.cycles), fmax, us);
      if (us < best_time) {
        best_time = us;
        best_k = k;
      }
    }
    std::printf("  -> best arity at p=%u: k=%u\n", p, best_k);
  }

  std::printf("\nwith 16 threads the stall term nearly vanishes, so the arity\n"
              "choice shifts toward whatever keeps the clock highest:\n");
  std::printf("  %6s %4s %12s %10s %12s\n", "PEs", "k", "cycles", "Fmax", "time(us)");
  const std::uint32_t mt_pes[] = {256, 1024};
  const std::uint32_t mt_arities[] = {2, 8, 32};
  std::vector<SweepJob> mt_jobs;
  for (const std::uint32_t p : mt_pes)
    for (const std::uint32_t k : mt_arities) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = 16;
      cfg.broadcast_arity = k;
      mt_jobs.push_back(bench::make_job(cfg, bench::reduction_chain_program(kWork)));
    }
  const auto mt_stats = bench::run_sweep(mt_jobs);
  next = 0;
  for (const std::uint32_t p : mt_pes) {
    for (const std::uint32_t k : mt_arities) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = 16;
      cfg.broadcast_arity = k;
      const auto& st = mt_stats[next++];
      const double fmax = arch::TimingModel::fmax_mhz(cfg, arch::ep2c35());
      const double us = arch::TimingModel::seconds(cfg, arch::ep2c35(),
                                                   static_cast<double>(st.cycles)) * 1e6;
      std::printf("  %6u %4u %12llu %9.1fM %12.2f\n", p, k,
                  static_cast<unsigned long long>(st.cycles), fmax, us);
    }
  }
  return 0;
}
