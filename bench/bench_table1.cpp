// Table 1 reproduction: FPGA resource usage of the prototype
// (16 x 8-bit PEs, 16 threads, 1 KB local memory, Cyclone II EP2C35).
#include <cstdio>

#include "arch/resource_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace masc;
  using namespace masc::arch;

  bench::header("Table 1 — resource usage of the initial prototype",
                "Schaffer & Walker 2007, Table 1 / §7");

  MachineConfig cfg;  // prototype shape
  cfg.num_pes = 16;
  cfg.num_threads = 16;
  cfg.word_width = 8;
  cfg.local_mem_bytes = 1024;
  cfg.broadcast_arity = 2;
  cfg.multiplier = MultiplierKind::kNone;  // "a few features ... missing"
  cfg.divider = DividerKind::kNone;

  const auto rep = ResourceModel::estimate(cfg);
  const auto dev = ep2c35();
  std::printf("\nmodel estimate:\n%s", ResourceModel::render(rep, dev).c_str());

  struct Row { const char* name; unsigned le, ram, mle, mram; };
  const auto tot = rep.total();
  const Row rows[] = {
      {"Control Unit", 1897, 8, rep.control_unit.logic_elements, rep.control_unit.ram_blocks},
      {"PE Array (16 PEs)", 5984, 96, rep.pe_array.logic_elements, rep.pe_array.ram_blocks},
      {"Network", 1791, 0, rep.network.logic_elements, rep.network.ram_blocks},
      {"Total", 9672, 104, tot.logic_elements, tot.ram_blocks},
  };
  std::printf("\npaper vs model:\n");
  std::printf("  %-20s %10s %10s %10s %10s\n", "component", "paper LE",
              "model LE", "paper RAM", "model RAM");
  bool exact = true;
  for (const auto& r : rows) {
    std::printf("  %-20s %10u %10u %10u %10u\n", r.name, r.le, r.mle, r.ram, r.mram);
    exact = exact && r.le == r.mle && r.ram == r.mram;
  }
  std::printf("\n%s\n", exact ? "MATCH: model reproduces Table 1 exactly "
                                "(constants calibrated; formulas structural)"
                              : "MISMATCH — see EXPERIMENTS.md");

  std::printf("\nlimiting resource check (paper: \"the main factor that limits "
              "the number of PEs\n is the availability of RAM blocks\"):\n");
  MachineConfig bigger = cfg;
  bigger.num_pes = 17;
  std::printf("  at p=17 on EP2C35 the design is limited by: %s\n",
              to_string(ResourceModel::limiting_resource(bigger, dev)));
  return exact ? 0 : 1;
}
