// E4 — ablation of the §6.2 multiplier/divider design choices:
// a pipelined (hard-block) multiplier vs a sequential one (structural
// hazards across threads) vs divider contention, on a multiply-dense
// kernel, plus the resource cost of each option.
#include <cstdio>

#include "arch/resource_model.hpp"
#include "bench_util.hpp"

namespace {

using namespace masc;

std::string mul_kernel(unsigned total_iters) {
  return R"(
main:
    nthreads r1
    li r2, 1
    la r3, worker
spawn:
    bgeu r2, r1, body
    tspawn r4, r3
    addi r2, r2, 1
    j spawn
worker:
body:
    nthreads r5
    li r6, )" + std::to_string(total_iters) + R"(
    divu r2, r6, r5
    pindex p1
    paddi p2, p1, 3
    li r1, 0
loop:
    pmul p3, p1, p2       # PE multiplier
    padd p2, p2, p3
    rsum r3, p3
    add r4, r4, r3
    addi r1, r1, 1
    bne r1, r2, loop
    texit
)";
}

}  // namespace

int main() {
  bench::header("E4 — multiplier/divider implementation ablation",
                "§6.2 design discussion (pipelined vs sequential units)");

  constexpr unsigned kWork = 512;
  struct Opt {
    const char* name;
    MultiplierKind mul;
  };
  const Opt options[] = {
      {"pipelined multiplier (hard blocks)", MultiplierKind::kPipelined},
      {"sequential multiplier (shared)", MultiplierKind::kSequential},
  };

  std::printf("\n%-38s %8s %12s %14s %10s\n", "configuration", "threads",
              "cycles", "struct.stall", "IPC");
  for (const auto& opt : options) {
    for (const std::uint32_t threads : {1u, 4u, 16u}) {
      MachineConfig cfg;
      cfg.num_pes = 16;
      cfg.word_width = 16;
      cfg.num_threads = threads;
      cfg.multiplier = opt.mul;
      const auto st = bench::run_stats(cfg, mul_kernel(kWork));
      std::printf("%-38s %8u %12llu %14llu %10.3f\n", opt.name, threads,
                  static_cast<unsigned long long>(st.cycles),
                  static_cast<unsigned long long>(st.idle_by_cause[
                      static_cast<std::size_t>(StallCause::kStructuralHazard)]),
                  st.ipc());
    }
  }

  std::printf("\nresource cost of the options (16 PEs, 16-bit, EP2C35 LEs):\n");
  for (const auto mul : {MultiplierKind::kNone, MultiplierKind::kSequential,
                         MultiplierKind::kPipelined}) {
    MachineConfig cfg;
    cfg.num_pes = 16;
    cfg.word_width = 16;
    cfg.multiplier = mul;
    cfg.divider = DividerKind::kNone;
    const auto rep = arch::ResourceModel::estimate(cfg);
    const char* name = mul == MultiplierKind::kNone ? "no multiplier"
                       : mul == MultiplierKind::kSequential
                           ? "sequential multiplier"
                           : "pipelined multiplier (+hard DSP)";
    std::printf("  %-34s PE array %6u LEs\n", name, rep.pe_array.logic_elements);
  }

  std::printf("\nreading: with one thread the sequential multiplier's occupancy\n"
              "hides behind the reduction stalls; with many threads it becomes\n"
              "the bottleneck (structural stalls explode) — exactly why §6.2\n"
              "notes the sequential unit \"cannot be used by multiple threads\n"
              "simultaneously\" and prefers hard multiplier blocks.\n");
  return 0;
}
