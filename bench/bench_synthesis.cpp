// §7 reproduction: synthesis results — clock rate, resource totals, and
// the RAM-block wall that caps the prototype at 16 PEs on the EP2C35.
#include <cstdio>

#include "arch/fit.hpp"
#include "arch/timing_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace masc;
  using namespace masc::arch;

  bench::header("§7 — synthesis results for the initial prototype",
                "Schaffer & Walker 2007, §7 (75 MHz, 9672 LE, 104 RAM on EP2C35)");

  MachineConfig cfg;
  cfg.num_pes = 16;
  cfg.num_threads = 16;
  cfg.word_width = 8;
  cfg.local_mem_bytes = 1024;
  cfg.multiplier = MultiplierKind::kNone;
  cfg.divider = DividerKind::kNone;
  const auto dev = ep2c35();

  const auto tb = TimingModel::estimate(cfg, dev);
  std::printf("\nclock model:\n");
  std::printf("  critical path: PE forwarding logic = %.2f ns (paper: forwarding\n"
              "  logic in the PE is the critical path)\n", tb.forwarding_ns);
  std::printf("  Fmax = %.1f MHz   (paper: ~75 MHz)\n", tb.fmax_mhz);

  const auto rep = ResourceModel::estimate(cfg);
  const auto tot = rep.total();
  std::printf("\nresources: %u LEs of %u (%.0f%%), %u RAM blocks of %u (%.0f%%)\n",
              tot.logic_elements, dev.logic_elements,
              100.0 * tot.logic_elements / dev.logic_elements, tot.ram_blocks,
              dev.ram_blocks, 100.0 * tot.ram_blocks / dev.ram_blocks);
  std::printf("  (paper: 9,672 LEs and 104 RAM blocks)\n");

  const auto fit = max_pes_on_device(cfg, dev);
  std::printf("\nfit: max PEs on %s = %u, blocked by %s at p = %u\n",
              dev.name.c_str(), fit.max_pes, to_string(fit.limited_by),
              fit.max_pes + 1);
  std::printf("  RAM is the binding constraint while only %.0f%% of logic is "
              "used —\n  exactly the imbalance §9 proposes to attack.\n",
              100.0 * tot.logic_elements / dev.logic_elements);

  std::printf("\nper-PE RAM breakdown at the prototype shape:\n");
  std::printf("  local memory 1 KB            : 2 M4K blocks\n");
  std::printf("  GP register file (3 replicas): 3 M4K blocks\n");
  std::printf("  flag file (4 replicas / 4 PEs): 1 M4K block equivalent\n");
  std::printf("  -> 6 blocks/PE * 16 PEs = 96, + 8 CU blocks = 104 of 105\n");
  return 0;
}
