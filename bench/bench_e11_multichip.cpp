// E11 — multi-chip scaling: BFS throughput vs chip count on the
// inter-chip fabric (docs/MULTICHIP.md), and the paper's multithreading
// question re-asked at fabric scale. The prototype's argument (§5) is
// that fine-grain multithreading exists to hide reduction latency; a
// K-chip fabric makes that latency *much* deeper (2·depth·link_latency
// cycles per cross-chip allreduce vs ~log2(p) inside one chip), so the
// interesting measurement is whether background threads can still fill
// the stalls. Two experiments:
//
//   1. Throughput-vs-chips: the same 120-vertex BFS on K = 1,2,4,8
//      chips of 16 PEs. More chips = more PEs but also one inter-chip
//      allreduce-OR per BFS level; the curve shows where fabric latency
//      eats the parallelism.
//
//   2. Thread-overlap at fabric scale: A = BFS alone, B = BFS with
//      threads 1..T-1 running local reduction work, C ~= the background
//      work alone (measured by pairing it with a trivial 2-level BFS).
//      Perfect overlap means B = max(A, C); full serialization means
//      B = A + C. Efficiency = (A + C - B) / min(A, C).
//
// Every simulated run self-checks its BFS levels against the host
// reference and the process exits non-zero on any mismatch, so this
// bench doubles as an integration test (the bench_multichip_smoke ctest
// entry runs it with --smoke).
//
//   bench_e11_multichip [--smoke] [--json]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "asclib/algorithms/graph.hpp"
#include "bench_util.hpp"

namespace {

using namespace masc;

// 120-vertex ring + deterministic LCG chords (average degree ~4): a few
// hops of diameter, several vertices discovered per level, and enough
// frontier words (120/16 = 8) that each level moves a real payload
// across the fabric.
std::vector<asc::GraphEdge> main_graph(std::uint32_t n) {
  std::vector<asc::GraphEdge> e;
  for (std::uint32_t i = 0; i < n; ++i) e.push_back({i, (i + 1) % n});
  std::uint32_t lcg = 12345;
  for (std::uint32_t i = 0; i < n; ++i) {
    lcg = lcg * 1103515245u + 12345u;
    const std::uint32_t u = (lcg >> 8) % n;
    lcg = lcg * 1103515245u + 12345u;
    const std::uint32_t v = (lcg >> 8) % n;
    if (u != v) e.push_back({u, v});
  }
  return e;
}

// Star graph: source connects to everything, so BFS is exactly 2 levels
// and the run time is dominated by the background iterations — the
// "background work alone" proxy for the overlap experiment.
std::vector<asc::GraphEdge> star_graph(std::uint32_t n) {
  std::vector<asc::GraphEdge> e;
  for (std::uint32_t i = 1; i < n; ++i) e.push_back({0, i});
  return e;
}

int failures = 0;

asc::GraphBfs::Result run_checked(const asc::GraphBfs& bfs,
                                  const std::vector<Word>& want,
                                  std::uint32_t chips, Word bg_iters) {
  asc::GraphBfs::Result r;
  if (chips <= 1) {
    r = bfs.run(0, bg_iters);
  } else {
    fabric::FabricConfig fab;
    fab.chips = chips;
    fab.topology = fabric::Topology::kTree;
    fab.link_latency = 8;
    r = bfs.run(0, fab, bg_iters);
  }
  if (r.level != want) {
    std::fprintf(stderr, "E11: BFS levels WRONG at chips=%u bg=%u\n", chips,
                 static_cast<unsigned>(bg_iters));
    ++failures;
  }
  return r;
}

double per_kcycle(const std::vector<Word>& levels, Cycle cycles) {
  std::uint32_t visited = 0;
  for (const auto l : levels)
    if (l != 0) ++visited;
  return 1000.0 * static_cast<double>(visited) / static_cast<double>(cycles);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    else if (!std::strcmp(argv[i], "--json")) json = true;
    else {
      std::fprintf(stderr, "usage: bench_e11_multichip [--smoke] [--json]\n");
      return 2;
    }
  }

  const std::uint32_t n = 120;
  const auto edges = main_graph(n);
  MachineConfig cfg;
  cfg.num_pes = 16;
  cfg.num_threads = 8;
  cfg.word_width = 16;

  const asc::GraphBfs bfs(cfg, n, edges);
  const auto want = asc::GraphBfs::host_reference(n, edges, false, 0);
  const asc::GraphBfs tiny(cfg, 16, star_graph(16));
  const auto tiny_want = asc::GraphBfs::host_reference(16, star_graph(16),
                                                       false, 0);

  const std::vector<std::uint32_t> chip_counts =
      smoke ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4, 8};
  const Word bg_iters = smoke ? 64 : 400;

  if (!json)
    bench::header("E11 — multi-chip BFS scaling and thread overlap",
                  "§5 at fabric scale (docs/MULTICHIP.md)");

  // Experiment 1: throughput vs chips.
  struct CurvePoint {
    std::uint32_t chips;
    asc::GraphBfs::Result r;
    double vpk;
  };
  std::vector<CurvePoint> curve;
  for (const auto k : chip_counts) {
    auto r = run_checked(bfs, want, k, 0);
    const double vpk = per_kcycle(r.level, r.cycles);
    curve.push_back({k, std::move(r), vpk});
  }

  // Experiment 2: overlap efficiency per chip count.
  struct OverlapPoint {
    std::uint32_t chips;
    Cycle a, b, c;
    double efficiency;
  };
  std::vector<OverlapPoint> overlap;
  for (const auto k : chip_counts) {
    const Cycle a = run_checked(bfs, want, k, 0).cycles;
    const Cycle b = run_checked(bfs, want, k, bg_iters).cycles;
    const Cycle c = run_checked(tiny, tiny_want, k, bg_iters).cycles;
    const Cycle lo = a < c ? a : c;
    const double eff =
        lo == 0 ? 0.0
                : static_cast<double>(static_cast<long long>(a + c) -
                                      static_cast<long long>(b)) /
                      static_cast<double>(lo);
    overlap.push_back({k, a, b, c, eff});
  }

  if (json) {
    std::printf("{\"workload\":\"BFS n=%u ring+chords, chip=%s, tree "
                "fabric link_latency=8, bg_iters=%u\",\"chips_curve\":{",
                n, cfg.name().c_str(), static_cast<unsigned>(bg_iters));
    for (std::size_t i = 0; i < curve.size(); ++i)
      std::printf("%s\"%u\":{\"fleet_cycles\":%llu,\"levels\":%u,"
                  "\"verts_per_kcycle\":%.3f,\"fabric_hops\":%llu,"
                  "\"max_collective_latency\":%llu}",
                  i ? "," : "", curve[i].chips,
                  static_cast<unsigned long long>(curve[i].r.cycles),
                  curve[i].r.levels, curve[i].vpk,
                  static_cast<unsigned long long>(curve[i].r.fabric.hops),
                  static_cast<unsigned long long>(
                      curve[i].r.fabric.max_latency));
    std::printf("},\"overlap\":{");
    for (std::size_t i = 0; i < overlap.size(); ++i)
      std::printf("%s\"%u\":{\"bfs_cycles\":%llu,\"combined_cycles\":%llu,"
                  "\"bg_cycles\":%llu,\"efficiency\":%.3f}",
                  i ? "," : "", overlap[i].chips,
                  static_cast<unsigned long long>(overlap[i].a),
                  static_cast<unsigned long long>(overlap[i].b),
                  static_cast<unsigned long long>(overlap[i].c),
                  overlap[i].efficiency);
    std::printf("}}\n");
    return failures ? 1 : 0;
  }

  std::printf("\nBFS throughput vs chips (n=%u, chip=%s, tree fabric, "
              "link latency 8):\n", n, cfg.name().c_str());
  std::printf("%6s | %12s %7s %14s %10s %12s\n", "chips", "fleet cycles",
              "levels", "verts/kcycle", "fab hops", "max coll lat");
  for (const auto& p : curve)
    std::printf("%6u | %12llu %7u %14.3f %10llu %12llu\n", p.chips,
                static_cast<unsigned long long>(p.r.cycles), p.r.levels, p.vpk,
                static_cast<unsigned long long>(p.r.fabric.hops),
                static_cast<unsigned long long>(p.r.fabric.max_latency));

  std::printf("\nthread overlap at fabric scale (background = %u local "
              "reductions on threads 1..%u):\n",
              static_cast<unsigned>(bg_iters), cfg.num_threads - 1);
  std::printf("  A = BFS alone, B = BFS + background, C ~= background alone;"
              "\n  efficiency (A + C - B) / min(A, C): 1.0 = fully hidden, "
              "0.0 = serialized\n");
  std::printf("%6s | %10s %10s %10s %12s\n", "chips", "A", "B", "C",
              "efficiency");
  for (const auto& p : overlap)
    std::printf("%6u | %10llu %10llu %10llu %12.3f\n", p.chips,
                static_cast<unsigned long long>(p.a),
                static_cast<unsigned long long>(p.b),
                static_cast<unsigned long long>(p.c), p.efficiency);

  if (failures) {
    std::fprintf(stderr, "\nE11: %d self-check failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall runs matched the host-reference BFS levels\n");
  return 0;
}
