// E10 — toolchain quality: the same associative query workload written
// in ASCAL (compiled) and in hand-written assembly, on the same machine.
// Reports the compiler's cycle overhead — the §9 "software for the
// architecture" line item, measured.
#include <cstdio>

#include "ascal/ascal.hpp"
#include "bench_util.hpp"

namespace {

using namespace masc;

/// Workload: 64 rounds of {search, count, masked update, broadcast op}.
const char* kAscalSource = R"(
pint v, acc;
pflag hit;
int i, n, total;
v = index();
i = 0;
n = 64;
while (i < n) {
    hit = v > i;
    total = total + count(hit);
    where (hit) { acc = acc + v; }
    v = v + 1;
    i = i + 1;
}
)";

const char* kHandAsm = R"(
    pindex p1            # v
    li r1, 0             # i
    li r2, 64            # n
    li r4, 0             # total
loop:
    pcltus pf1, r1, p1   # hit: i <u v, i.e. v > i
    rcount r3, pf1
    add r4, r4, r3
    padd p2, p2, p1 ?pf1 # acc += v, masked directly
    paddi p1, p1, 1
    addi r1, r1, 1
    bne r1, r2, loop
    halt
)";

}  // namespace

int main() {
  bench::header("E10 — ASCAL compiler overhead vs hand-written assembly",
                "§9 'implementing software for the architecture' (toolchain quality)");

  MachineConfig cfg;
  cfg.num_pes = 64;
  cfg.word_width = 16;

  // ASCAL version.
  ascal::AscalProgram prog(cfg, kAscalSource);
  const auto a = prog.run();

  // Hand-written version: masked updates applied in place, no
  // temporaries or condition copies.
  const auto h = bench::run_stats(cfg, kHandAsm);

  std::printf("\n%-28s %12s %10s %8s\n", "implementation", "cycles", "instr", "IPC");
  std::printf("%-28s %12llu %10llu %8.3f\n", "ASCAL (compiled)",
              static_cast<unsigned long long>(a.cycles),
              static_cast<unsigned long long>(a.stats.instructions), a.stats.ipc());
  std::printf("%-28s %12llu %10llu %8.3f\n", "hand-written assembly",
              static_cast<unsigned long long>(h.cycles),
              static_cast<unsigned long long>(h.instructions), h.ipc());
  std::printf("\ncompiled/hand cycle ratio: %.2fx\n",
              static_cast<double>(a.cycles) / static_cast<double>(h.cycles));
  std::printf("\nreading: the compiler's register-to-register moves and\n"
              "condition materialization cost a modest constant factor; the\n"
              "associative operations themselves (searches, counts, masked\n"
              "updates) compile to exactly the instructions a human writes.\n");
  return 0;
}
