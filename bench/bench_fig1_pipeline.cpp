// Figure 1 reproduction: the split pipeline organization. One
// instruction of each class (scalar / parallel / reduction) runs through
// a hazard-free pipeline; the stage diagram shows the shared front end
// (IF ID SR), the scalar path (EX MA WB), the parallel path
// (B1..Bb PR EX MA WB), and the reduction path (B1..Bb PR R1..Rr WB).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace masc;

  bench::header("Figure 1 — pipeline organization (split paths per class)",
                "Schaffer & Walker 2007, Fig. 1 (b=2 broadcast, r=4 reduction stages)");

  MachineConfig cfg;
  cfg.num_pes = 16;
  cfg.broadcast_arity = 4;  // b = 2, matching the figure
  cfg.word_width = 16;

  Machine m(cfg);
  m.enable_trace();
  // Independent instructions: each travels its own path without stalls.
  m.load(assemble(R"(
    add  r1, r2, r3      # scalar path
    padd p1, p2, p3      # parallel path
    rmax r4, p5          # reduction path
    halt
)"));
  if (!m.run(1000)) return 1;
  std::printf("\n%s\n", render_pipeline_diagram(m.trace(), cfg).c_str());
  std::printf("paths (paper Fig. 1):\n"
              "  scalar:    IF ID SR EX MA WB\n"
              "  parallel:  IF ID SR B1 B2 PR EX MA WB\n"
              "  reduction: IF ID SR B1 B2 PR R1 R2 R3 R4 WB\n");
  return 0;
}
