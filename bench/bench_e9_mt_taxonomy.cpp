// E9 — the §5 multithreading taxonomy, measured: coarse-grain vs
// fine-grain vs SMT on the reduction-dense kernel. The paper argues (in
// prose) that coarse-grain switching cannot cover reduction hazards —
// "the latency of a reduction operation ... can vary from a few cycles
// for a small machine to tens of cycles for a larger one, so fine-grain
// multithreading or SMT is necessary" — and that the prototype therefore
// uses fine-grain. This bench turns that argument into numbers.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace masc;

  bench::header("E9 — multithreading taxonomy: coarse vs fine-grain vs SMT",
                "§5 (the design argument for fine-grain multithreading)");

  constexpr unsigned kWork = 2048;
  struct Policy {
    const char* name;
    ThreadSchedPolicy policy;
    std::uint32_t issue_width;
  };
  const Policy policies[] = {
      {"coarse-grain (switch=8)", ThreadSchedPolicy::kCoarseGrain, 1},
      {"fine-grain (prototype)", ThreadSchedPolicy::kFineGrain, 1},
      {"SMT x2 (idealized)", ThreadSchedPolicy::kSmt, 2},
  };

  std::printf("\nreduction-dense kernel, 16 threads, fixed total work:\n");
  std::printf("%-26s %6s %7s | %10s %8s %10s %10s\n", "policy", "PEs", "b+r",
              "cycles", "IPC", "idle", "switches");
  for (const std::uint32_t p : {16u, 256u, 1024u}) {
    for (const auto& pol : policies) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = 16;
      cfg.sched_policy = pol.policy;
      cfg.issue_width = pol.issue_width;
      const auto st = bench::run_stats(cfg, bench::reduction_chain_program(kWork));
      std::printf("%-26s %6u %7u | %10llu %8.3f %10llu %10llu\n", pol.name, p,
                  cfg.broadcast_latency() + cfg.reduction_latency(),
                  static_cast<unsigned long long>(st.cycles), st.ipc(),
                  static_cast<unsigned long long>(st.idle_cycles),
                  static_cast<unsigned long long>(st.thread_switches));
    }
    std::printf("\n");
  }

  std::printf("coarse-grain switch-penalty sensitivity (256 PEs, b+r = 16):\n");
  std::printf("%12s | %10s %10s %10s\n", "penalty", "cycles", "IPC", "switches");
  for (const std::uint32_t pen : {2u, 4u, 8u, 16u, 32u}) {
    MachineConfig cfg;
    cfg.num_pes = 256;
    cfg.word_width = 16;
    cfg.num_threads = 16;
    cfg.sched_policy = ThreadSchedPolicy::kCoarseGrain;
    cfg.switch_penalty = pen;
    const auto st = bench::run_stats(cfg, bench::reduction_chain_program(kWork));
    std::printf("%12u | %10llu %10.3f %10llu\n", pen,
                static_cast<unsigned long long>(st.cycles), st.ipc(),
                static_cast<unsigned long long>(st.thread_switches));
  }

  std::printf("\nreading: no coarse-grain switch penalty wins — cheap switches\n"
              "thrash on every reduction, expensive ones degenerate toward\n"
              "single-threading. Fine-grain interleaving reaches IPC ~1 at\n"
              "every machine size, i.e. it already saturates the single issue\n"
              "slot; SMT's further gain comes entirely from paying for a\n"
              "second (here idealized) issue port, and §5 notes SMT has \"the\n"
              "highest hardware cost of all three approaches\" — hence the\n"
              "prototype's choice of fine-grain multithreading.\n");
  return 0;
}
