// Shared helpers for the benchmark harnesses: canned workload programs
// and table formatting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "sim/machine.hpp"
#include "sim/sweep.hpp"

namespace masc::bench {

/// A reduction-dense workload: every thread runs `iters` iterations of
/// {reduction -> immediate scalar consume}, the worst case for the
/// pipelined networks and the best case for multithreading. Total work
/// is split evenly across however many hardware threads exist, so all
/// configurations do the same number of reductions.
inline std::string reduction_chain_program(unsigned total_iters) {
  return R"(
main:
    nthreads r1
    li r2, 1
    la r3, worker
spawn:
    bgeu r2, r1, body
    tspawn r4, r3
    addi r2, r2, 1
    j spawn
worker:
body:
    nthreads r5
    li r6, )" + std::to_string(total_iters) + R"(
    divu r2, r6, r5
    pindex p1
    li r1, 0
loop:
    rsum r3, p1
    add r4, r4, r3
    addi r1, r1, 1
    bne r1, r2, loop
    texit
)";
}

/// A mixed associative workload: per iteration, a search (compare +
/// count) plus a masked arithmetic update — roughly one reduction per
/// four parallel/scalar instructions.
inline std::string mixed_asc_program(unsigned total_iters) {
  return R"(
main:
    nthreads r1
    li r2, 1
    la r3, worker
spawn:
    bgeu r2, r1, body
    tspawn r4, r3
    addi r2, r2, 1
    j spawn
worker:
body:
    nthreads r5
    li r6, )" + std::to_string(total_iters) + R"(
    divu r2, r6, r5
    pindex p1
    pmov p2, p1
    li r1, 0
loop:
    pcgts pf1, r1, p2     # search: value < i
    rcount r3, pf1        # count responders
    add r4, r4, r3
    paddi p2, p2, 1 ?pf1  # masked update
    padds p3, r3, p2      # broadcast-scalar arithmetic
    addi r1, r1, 1
    bne r1, r2, loop
    texit
)";
}

/// A row-compute-dense workload for the intra-job threading curves
/// (BM_CycleSimMT): every iteration runs parallel divisions and
/// multiplies — the host cost of a division row is dominated by p
/// unvectorizable integer divides, so at large PE counts each row loop
/// is microseconds of real work and the per-row fork/join barrier can
/// amortize. Divisor p2 = pindex + 3 is never rewritten, so it is never
/// zero and the quotient row stays data-dependent per PE.
inline std::string parallel_dense_program(unsigned total_iters) {
  return R"(
main:
    nthreads r1
    li r2, 1
    la r3, worker
spawn:
    bgeu r2, r1, body
    tspawn r4, r3
    addi r2, r2, 1
    j spawn
worker:
body:
    nthreads r5
    li r6, )" + std::to_string(total_iters) + R"(
    divu r2, r6, r5
    pindex p1
    paddi p2, p1, 3       # divisor row: pe + 3, never zero
    pmov p3, p1
    paddi p3, p3, 7
    li r1, 0
loop:
    pdivu p4, p3, p2      # p unvectorizable host divides per row
    pmul p5, p4, p2
    pdivu p6, p5, p2
    padd p3, p6, p1
    addi r1, r1, 1
    bne r1, r2, loop
    texit
)";
}

/// Run a program on a configuration; throws on timeout.
inline Stats run_stats(const MachineConfig& cfg, const std::string& src,
                       Cycle max_cycles = 100'000'000) {
  Machine m(cfg);
  m.load(assemble(src));
  if (!m.run(max_cycles)) throw SimulationError("benchmark workload timed out");
  return m.stats();
}

/// Build one sweep job for a (config, source) pair.
inline SweepJob make_job(const MachineConfig& cfg, const std::string& src,
                         Cycle max_cycles = 100'000'000) {
  SweepJob job;
  job.cfg = cfg;
  job.program = assemble(src);
  job.label = cfg.name();
  job.max_cycles = max_cycles;
  return job;
}

/// Run a grid of independent jobs across all host cores. Results come
/// back in submission order (the SweepRunner's determinism guarantee),
/// so callers index them by the same loop structure that built the grid.
/// Throws on the first job that timed out or errored, like run_stats.
inline std::vector<Stats> run_sweep(const std::vector<SweepJob>& jobs,
                                    unsigned workers = 0) {
  const auto results = SweepRunner(workers).run(jobs);
  std::vector<Stats> stats;
  stats.reserve(results.size());
  for (const auto& r : results) {
    if (!r.error.empty())
      throw SimulationError("sweep job " + r.label + " failed: " + r.error);
    if (!r.finished)
      throw SimulationError("sweep job " + r.label + " timed out");
    stats.push_back(r.stats);
  }
  return stats;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n======================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper artifact: %s\n", paper_ref.c_str());
  std::printf("======================================================================\n");
}

}  // namespace masc::bench
