// §8 reproduction: related-work clock comparison. The paper contrasts
//   [10] Li et al.   — 95 x 8-bit PEs, NON-pipelined broadcast, 68 MHz
//                      (Virtex XCV1000E): clock limited by instruction
//                      distribution time;
//   [11] Hoare et al.— 88 PEs, pipelined broadcast, 121 MHz (Stratix
//                      EP1S80): faster clock, but execution not pipelined;
//   this paper       — pipelined everything + multithreading, 75 MHz on
//                      a (slower) Cyclone II.
// The model reproduces the *ordering and shape*: pipelining the
// broadcast decouples Fmax from p; without it Fmax decays.
#include <cstdio>

#include "arch/timing_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace masc;
  using namespace masc::arch;

  bench::header("§8 — related-work clock comparison",
                "Schaffer & Walker 2007, §8 (textual claims)");

  struct Entry {
    const char* name;
    MachineConfig cfg;
    Device dev;
    double reported_mhz;  // 0 = not reported
  };

  MachineConfig li;  // [10]
  li.num_pes = 95;
  li.word_width = 8;
  li.multithreading = false;
  li.pipelined_network = false;
  li.local_mem_bytes = 512;

  MachineConfig hoare = li;  // [11]
  hoare.num_pes = 88;
  hoare.pipelined_network = true;

  MachineConfig ours;  // this paper
  ours.num_pes = 16;
  ours.num_threads = 16;
  ours.word_width = 8;

  const Entry entries[] = {
      {"Li et al. [10] (non-pipelined bcast)", li, xcv1000e(), 68.0},
      {"Hoare et al. [11] (pipelined bcast)", hoare, ep1s80(), 121.0},
      {"Multithreaded ASC (this paper)", ours, ep2c35(), 75.0},
  };

  std::printf("\n  %-38s %-10s %6s %12s %12s\n", "design", "device", "PEs",
              "paper MHz", "model MHz");
  for (const auto& e : entries) {
    std::printf("  %-38s %-10s %6u %12.0f %12.1f\n", e.name, e.dev.name.c_str(),
                e.cfg.num_pes, e.reported_mhz,
                TimingModel::fmax_mhz(e.cfg, e.dev));
  }

  std::printf("\nshape check — Fmax vs PE count, same device (EP2C35):\n");
  std::printf("  %6s %22s %22s\n", "PEs", "pipelined net (MHz)", "combinational net (MHz)");
  for (const std::uint32_t p : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    MachineConfig pipe = ours;
    pipe.num_pes = p;
    MachineConfig comb = pipe;
    comb.pipelined_network = false;
    comb.multithreading = false;
    std::printf("  %6u %22.1f %22.1f\n", p,
                TimingModel::fmax_mhz(pipe, ep2c35()),
                TimingModel::fmax_mhz(comb, ep2c35()));
  }
  std::printf("\npipelined-network Fmax is flat in p (critical path = PE\n"
              "forwarding); the combinational network's clock collapses as the\n"
              "array grows — the broadcast/reduction bottleneck of [3].\n");
  return 0;
}
