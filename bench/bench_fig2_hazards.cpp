// Figure 2 reproduction: the three pipeline hazard examples, as
// cycle-exact stage diagrams (stalls appear as repeated ID stages, as in
// the paper), plus the measured stall counts against the b+r bound.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace masc;

MachineConfig fig2_config() {
  MachineConfig cfg;
  cfg.num_pes = 16;
  cfg.broadcast_arity = 4;  // b = 2
  cfg.word_width = 16;      // r = 4
  return cfg;
}

Cycle issue_of(const Machine& m, std::size_t idx) {
  return m.trace().at(idx).issue;
}

void scenario(const char* title, const char* src, std::size_t producer,
              std::size_t consumer, unsigned expected_stall) {
  Machine m(fig2_config());
  m.enable_trace();
  m.load(assemble(src));
  if (!m.run(10000)) return;
  std::printf("--- %s ---\n%s", title,
              render_pipeline_diagram(m.trace(), m.config()).c_str());
  const auto stall = issue_of(m, consumer) - issue_of(m, producer) - 1;
  std::printf("measured stall: %llu cycles   paper bound: %u (b + r = 2 + 4)%s\n\n",
              static_cast<unsigned long long>(stall), expected_stall,
              stall == expected_stall ? "   [matches]" : "   [MISMATCH]");
}

}  // namespace

int main() {
  bench::header("Figure 2 — pipeline hazards (b=2, r=4, as in the paper)",
                "Schaffer & Walker 2007, Fig. 2 / §4.2");
  std::printf("\n");

  scenario(
      "broadcast hazard: SUB -> PADD, eliminated by EX->B1 forwarding",
      R"(
    li r2, 30
    li r3, 10
    sub r1, r2, r3
    padds p1, r1, p2
    halt
)",
      2, 3, 0);

  scenario(
      "reduction hazard: RMAX -> SUB stalls b + r cycles",
      R"(
    pindex p2
    li r2, 1
    rmax r1, p2
    sub r3, r1, r2
    halt
)",
      2, 3, 6);

  scenario(
      "broadcast-reduction hazard: RMAX -> PADD stalls b + r cycles",
      R"(
    pindex p2
    rmax r1, p2
    padds p3, r1, p2
    halt
)",
      1, 2, 6);

  // The paper's remedy, §5: with fine-grain multithreading the stall
  // slots are filled by another thread.
  {
    Machine m(fig2_config());
    m.enable_trace();
    m.load(assemble(R"(
main:
    la r1, worker
    tspawn r2, r1
    pindex p2
    rmax r1, p2
    sub r3, r1, r0
    tjoin r2
    halt
worker:
    pindex p2
    rmin r1, p2
    sub r3, r1, r0
    texit
)"));
    if (m.run(10000)) {
      std::printf("--- remedy (§5): a second hardware thread fills the stall ---\n%s",
                  render_pipeline_diagram(m.trace(), m.config(), true).c_str());
      std::printf("idle cycles attributed to reduction hazards: %llu "
                  "(vs %u per thread when single-threaded)\n",
                  static_cast<unsigned long long>(
                      m.stats().idle_by_cause[static_cast<std::size_t>(
                          StallCause::kReductionHazard)]),
                  6u);
    }
  }
  return 0;
}
