// E3 — the software evaluation §9 promises: real associative workloads
// on the prototype vs its prior-generation baselines.
//
// Part 1: single-kernel workloads (MST, SAD block match, string match)
// across the four machines — the pipelining story: combinational
// networks cost no cycles but collapse the clock; pipelined networks
// cost log-p cycles per reduction.
//
// Part 2: a concurrent-query associative database scenario — the
// multithreading story: 16 independent queries over a shared in-memory
// table, split across however many hardware threads exist.
#include <cstdio>
#include <string>
#include <vector>

#include "asclib/algorithms/image.hpp"
#include "asclib/algorithms/mst.hpp"
#include "asclib/algorithms/string_match.hpp"
#include "baseline/comparison.hpp"
#include "bench_util.hpp"
#include "common/random.hpp"

namespace {

using namespace masc;

std::vector<std::vector<Word>> make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Word>> w(n, std::vector<Word>(n, asc::AscMst::kNoEdge));
  for (std::size_t i = 0; i < n; ++i) w[i][i] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const Word weight = 1 + rng.next_word(7);
    w[i][i - 1] = w[i - 1][i] = weight;
  }
  for (std::size_t e = 0; e < 3 * n; ++e) {
    const auto a = rng.next_below(n), b = rng.next_below(n);
    if (a == b) continue;
    const Word weight = 1 + rng.next_word(8);
    if (weight < w[a][b]) w[a][b] = w[b][a] = weight;
  }
  return w;
}

/// 16 exact-match queries over a shared table, work split across threads.
std::string concurrent_query_program(std::uint32_t slots) {
  const std::string S = std::to_string(slots);
  return R"(
main:
    nthreads r1
    li r2, 1
    la r3, worker
spawn:
    bgeu r2, r1, body
    tspawn r4, r3
    addi r2, r2, 1
    j spawn
worker:
body:
    nthreads r1
    tid r10              # this thread handles queries tid, tid+T, ...
    pindex p6
    li r13, 0
qloop:
    li r11, 16
    bgeu r10, r11, qdone
    andi r9, r10, 7      # key for this query
    li r5, 0
    li r6, )" + S + R"(
sloop:
    pbcast p1, r5
    plw p2, 0(p1)
    plw p3, )" + S + R"((p1)
    pcnes pf2, r0, p3
    pceqs pf1, r9, p2
    pfand pf1, pf1, pf2
    rcount r3, pf1
    add r13, r13, r3
    addi r5, r5, 1
    bne r5, r6, sloop
    add r10, r10, r1
    j qloop
qdone:
    tid r10
    sw r13, 0(r10)
    texit
)";
}

}  // namespace

int main() {
  bench::header("E3 — associative workloads: prototype vs §3 baselines",
                "§9 promised software evaluation; baselines from §3 [6],[7]");

  const std::uint32_t kPes = 64;

  // ---- Part 1: single-kernel workloads -------------------------------------
  struct Wl {
    const char* name;
    baseline::Workload fn;
  };
  const std::vector<Wl> workloads = {
      {"MST (48 vertices)",
       [](const MachineConfig& cfg) {
         asc::AscMst mst(cfg, make_graph(48, 42));
         return mst.run().outcome.stats;
       }},
      {"SAD block match (64 wins x 16 px)",
       [](const MachineConfig& cfg) {
         Rng rng(7);
         std::vector<Word> tmpl(16);
         for (auto& px : tmpl) px = rng.next_word(8);
         std::vector<std::vector<Word>> wins(cfg.num_pes, std::vector<Word>(16));
         for (auto& w : wins)
           for (auto& px : w) px = rng.next_word(8);
         asc::ImageKernels img(cfg);
         return img.sad_search(wins, tmpl).outcome.stats;
       }},
      {"string match (200 chars, m=4)",
       [](const MachineConfig& cfg) {
         Rng rng(9);
         std::string text;
         for (int i = 0; i < 200; ++i)
           text += static_cast<char>('a' + rng.next_below(4));
         asc::StringMatcher sm(cfg, text);
         return sm.find_all("abca").outcome.stats;
       }},
  };

  for (const auto& wl : workloads) {
    std::printf("\n--- %s, %u PEs ---\n", wl.name, kPes);
    const auto rows = baseline::compare(baseline::comparison_set(kPes), wl.fn);
    std::printf("%s", baseline::render_table(rows).c_str());
  }
  std::printf("\n(single-threaded kernels: the multithreaded machine matches\n"
              " pipelined-net-ST in cycles and wins on clock; see part 2 for\n"
              " thread-level parallelism.)\n");

  // ---- Part 2: concurrent queries -------------------------------------------
  std::printf("\n--- 16 concurrent exact-match queries, shared table of 256 "
              "records, %u PEs ---\n", kPes);
  Rng rng(1234);
  std::vector<Word> table(256);
  for (auto& v : table) v = rng.next_word(3);
  const std::uint32_t slots = asc::slots_for(table.size(), kPes);

  const auto rows = baseline::compare(
      baseline::comparison_set(kPes),
      [&](const MachineConfig& cfg) {
        asc::AscMachine m(cfg);
        m.load_source(concurrent_query_program(asc::slots_for(table.size(), cfg.num_pes)));
        m.bind_strided(0, table);
        m.bind_strided_validity(asc::slots_for(table.size(), cfg.num_pes),
                                table.size());
        const auto out = m.run();
        if (!out.finished) throw SimulationError("query workload timed out");
        return out.stats;
      });
  (void)slots;
  std::printf("%s", baseline::render_table(rows).c_str());
  std::printf("\nreading: with 16 threads the query mix keeps the issue slot\n"
              "full while individual threads wait out their reduction\n"
              "latencies — cycles drop well below the single-threaded pipelined\n"
              "machine AND the clock stays at the pipelined rate.\n");
  return 0;
}
