// E5 — §9's scaling question: how many PEs fit on which device, and what
// runs out first. Sweeps devices x (word width, local memory, threads).
#include <cstdio>

#include "arch/fit.hpp"
#include "bench_util.hpp"

int main() {
  using namespace masc;
  using namespace masc::arch;

  bench::header("E5 — PEs per device and the limiting resource",
                "§7 (RAM-block wall) and §9 (future-work scaling)");

  MachineConfig proto;
  proto.num_threads = 16;
  proto.word_width = 8;
  proto.local_mem_bytes = 1024;
  proto.multiplier = MultiplierKind::kNone;
  proto.divider = DividerKind::kNone;

  std::printf("\nprototype shape (8-bit, 16 threads, 1 KB/PE) across devices:\n");
  std::printf("  %-14s %8s %14s %10s %10s\n", "device", "max PEs", "limited by",
              "LE used", "RAM used");
  for (const auto& [dev, fit] : fit_across_devices(proto)) {
    const auto tot = fit.usage_at_max.total();
    std::printf("  %-14s %8u %14s %10u %10u\n", dev.name.c_str(), fit.max_pes,
                to_string(fit.limited_by), tot.logic_elements, tot.ram_blocks);
  }

  std::printf("\nEP2C35 sensitivity — trading local memory for PEs (§9: \"PE\n"
              "organizations that require fewer RAM blocks\"):\n");
  std::printf("  %-22s %8s %14s\n", "local memory / PE", "max PEs", "limited by");
  for (const std::uint32_t mem : {256u, 512u, 1024u, 2048u, 4096u}) {
    MachineConfig cfg = proto;
    cfg.local_mem_bytes = mem;
    const auto fit = max_pes_on_device(cfg, ep2c35());
    std::printf("  %10u words      %8u %14s\n", mem, fit.max_pes,
                to_string(fit.limited_by));
  }

  std::printf("\nEP2C35 sensitivity — thread contexts (replicated register state):\n");
  std::printf("  %-10s %8s %14s\n", "threads", "max PEs", "limited by");
  for (const std::uint32_t t : {1u, 4u, 16u, 64u, 128u}) {
    MachineConfig cfg = proto;
    cfg.num_threads = t;
    const auto fit = max_pes_on_device(cfg, ep2c35());
    std::printf("  %10u %8u %14s\n", t, fit.max_pes, to_string(fit.limited_by));
  }

  std::printf("\nreading: RAM blocks cap the array everywhere while >2/3 of the\n"
              "logic sits idle (§7); shrinking local memory or thread state\n"
              "buys PEs almost linearly — §9's proposed direction.\n");
  return 0;
}
