// E8 — §9 future work, made quantitative: "alternative PE organizations
// that require fewer RAM blocks and take advantage of unused logic
// resources." Sweeps register-file and flag-file implementations and
// reports how many PEs each organization fits on the EP2C35, trading
// the 71% idle logic against the saturated RAM blocks.
#include <cstdio>

#include "arch/fit.hpp"
#include "bench_util.hpp"

int main() {
  using namespace masc;
  using namespace masc::arch;

  bench::header("E8 — alternative PE organizations (fewer RAM blocks)",
                "§9 future work: trade idle logic for RAM blocks");

  struct Org {
    const char* name;
    RegFileImpl reg;
    FlagFileImpl flag;
  };
  const Org orgs[] = {
      {"prototype (block-RAM regs, shared-RAM flags)",
       RegFileImpl::kBlockRam, FlagFileImpl::kSharedBlockRam},
      {"flip-flop flags", RegFileImpl::kBlockRam, FlagFileImpl::kFlipFlops},
      {"LUT-RAM registers", RegFileImpl::kLutRam, FlagFileImpl::kSharedBlockRam},
      {"LUT-RAM registers + flip-flop flags",
       RegFileImpl::kLutRam, FlagFileImpl::kFlipFlops},
  };

  for (const std::uint32_t threads : {16u, 4u}) {
    std::printf("\n%u hardware threads, 8-bit PEs, 1 KB local memory, EP2C35:\n",
                threads);
    std::printf("  %-46s %8s %10s %10s %14s\n", "organization", "max PEs",
                "LE used", "RAM used", "limited by");
    for (const auto& org : orgs) {
      MachineConfig cfg;
      cfg.num_threads = threads;
      cfg.word_width = 8;
      cfg.local_mem_bytes = 1024;
      cfg.multiplier = MultiplierKind::kNone;
      cfg.divider = DividerKind::kNone;
      cfg.regfile_impl = org.reg;
      cfg.flagfile_impl = org.flag;
      const auto fit = max_pes_on_device(cfg, ep2c35());
      const auto tot = fit.usage_at_max.total();
      std::printf("  %-46s %8u %10u %10u %14s\n", org.name, fit.max_pes,
                  tot.logic_elements, tot.ram_blocks, to_string(fit.limited_by));
    }
  }

  std::printf("\nreading: at 16 threads the register files are too large for\n"
              "LUT RAM (the §6.2 argument) — the LE cost explodes and logic\n"
              "becomes the new wall before many PEs are gained. At 4 threads\n"
              "the balance flips and LUT-RAM organizations buy a visibly\n"
              "larger array, which is the §9 design direction.\n");
  return 0;
}
