// M1 — simulator host performance (google-benchmark): simulated cycles
// per host-second for the cycle-accurate model and instructions per
// host-second for the functional model, across machine sizes. This is
// the "cycle-accurate simulator runs on a laptop" check.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <memory>

#include "bench_util.hpp"
#include "common/base64.hpp"
#include "common/cache_store.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "fabric/fabric.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/funcsim.hpp"
#include "sim/lane_batch.hpp"

namespace {

using namespace masc;

void BM_CycleSim(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.num_threads = threads;
  cfg.word_width = 16;
  const Program prog = assemble(bench::mixed_asc_program(512));

  Cycle total_cycles = 0;
  for (auto _ : state) {
    Machine m(cfg);
    m.load(prog);
    benchmark::DoNotOptimize(m.run(10'000'000));
    total_cycles += m.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
  state.counters["cycles/run"] =
      static_cast<double>(total_cycles) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CycleSim)
    ->Args({16, 1})
    ->Args({16, 16})
    ->Args({256, 16})
    ->Args({1024, 16})
    ->Unit(benchmark::kMillisecond);

// Intra-job threading curves (docs/THREADING.md): the same job at rising
// --sim-threads, on a row-compute-dense workload (parallel division rows
// are p unvectorizable host divides each, so at 1024 PEs each row loop
// is real work the fork/join barrier can amortize). Before timing, one
// serial and one pooled run are compared blob-for-blob: the bench refuses
// to measure a parallel path that is not bit-identical, so the recorded
// curves are always for the verified implementation. Speedup at T
// threads = time(BM_CycleSimMT/p/1) / time(BM_CycleSimMT/p/T); on a
// single-core host all thread counts collapse to roughly serial time.
void BM_CycleSimMT(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  const auto sim_threads = static_cast<std::uint32_t>(state.range(1));
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  cfg.sim_threads = sim_threads;
  const Program prog = assemble(bench::parallel_dense_program(256));

  {
    // Bit-identity gate (also exercised standalone by the bench_mt_smoke
    // ctest entry): serial and pooled runs of this exact workload must
    // produce byte-identical state blobs, and the pool must actually be
    // active at the requested width.
    MachineConfig serial_cfg = cfg;
    serial_cfg.sim_threads = 1;
    Machine serial(serial_cfg), pooled(cfg);
    if (pooled.active_sim_threads() != sim_threads) {
      std::fprintf(stderr, "BM_CycleSimMT: pool inactive (%u != %u)\n",
                   pooled.active_sim_threads(), sim_threads);
      std::exit(1);
    }
    serial.load(prog);
    pooled.load(prog);
    serial.run(10'000'000);
    pooled.run(10'000'000);
    if (serial.save_state() != pooled.save_state()) {
      std::fprintf(stderr,
                   "BM_CycleSimMT: parallel path NOT bit-identical at "
                   "p=%u sim_threads=%u\n", pes, sim_threads);
      std::exit(1);
    }
  }

  Cycle total_cycles = 0;
  for (auto _ : state) {
    Machine m(cfg);
    m.load(prog);
    benchmark::DoNotOptimize(m.run(10'000'000));
    total_cycles += m.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
  state.counters["cycles/run"] =
      static_cast<double>(total_cycles) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CycleSimMT)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// SIMD-over-jobs lane batching (docs/PERF.md "Lane batching"): N
// homogeneous jobs (same program/config, per-lane data) executed in
// lockstep by run_lane_batch vs. N serial run_sweep_job calls. The
// workload is control-bound on purpose — branchy scalar loops across
// all threads with a masked parallel update per iteration and no
// reductions, at 16 PEs — because shared control (fetch, predecode,
// scoreboard, scheduler scan, branch-penalty timing) is what batching
// amortizes; per-lane data rows and reduction trees are paid per lane
// either way. Like BM_CycleSimMT, the setup refuses to measure an
// unverified path: every lane's batched Stats must be byte-identical
// to its serial run, with zero lanes ejected, before timing starts.
// Speedup at N lanes = jobs/s(BM_LaneBatch/N) / jobs/s(BM_LaneBatch/1);
// the acceptance bar is >= 4x at some N.
std::string lane_batch_program(unsigned total_iters) {
  return R"(
main:
    nthreads r1
    li r2, 1
    la r3, worker
spawn:
    bgeu r2, r1, body
    tspawn r4, r3
    addi r2, r2, 1
    j spawn
worker:
body:
    nthreads r5
    li r6, )" + std::to_string(total_iters) + R"(
    divu r2, r6, r5
    lw r7, 0(r0)          # per-lane memory image feeds the data path
    pindex p1
    padds p2, r7, p1      # fold the lane's data into parallel state once
    li r1, 0
loop:
    add r8, r8, r7        # scalar data path: accumulate, mix, compare
    xor r9, r8, r1
    sltu r10, r9, r6
    addi r1, r1, 1
    bne r1, r2, loop
    texit
)";
}

void BM_LaneBatch(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  MachineConfig cfg;
  cfg.num_pes = 16;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  const Program prog = assemble(lane_batch_program(2048));

  std::vector<SweepJob> jobs(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    jobs[i].cfg = cfg;
    jobs[i].program = prog;
    jobs[i].program.data = {static_cast<Word>(i)};  // per-lane memory image
    jobs[i].label = "lane" + std::to_string(i);
    jobs[i].seed = i;
    jobs[i].max_cycles = 10'000'000;
  }
  std::vector<LaneJob> batch;
  for (std::size_t i = 0; i < lanes; ++i) batch.push_back({&jobs[i], i});

  {
    // Bit-identity gate: per-job status, error, and Stats from the
    // batched run must equal the serial run's, lane for lane.
    LaneBatchReport rep;
    const auto batched = run_lane_batch(batch, &rep);
    if (lanes > 1 && (rep.lanes != lanes || rep.replayed != 0)) {
      std::fprintf(stderr, "BM_LaneBatch: batch degraded at %zu lanes "
                   "(entered=%u replayed=%u)\n", lanes, rep.lanes,
                   rep.replayed);
      std::exit(1);
    }
    for (std::size_t i = 0; i < lanes; ++i) {
      const SweepResult serial = run_sweep_job(jobs[i], i);
      if (batched[i].status != serial.status ||
          batched[i].error != serial.error ||
          to_json(batched[i].stats) != to_json(serial.stats)) {
        std::fprintf(stderr,
                     "BM_LaneBatch: lane %zu NOT bit-identical at %zu lanes\n",
                     i, lanes);
        std::exit(1);
      }
    }
  }

  std::uint64_t total_jobs = 0;
  for (auto _ : state) {
    const auto results = run_lane_batch(batch);
    benchmark::DoNotOptimize(results.data());
    total_jobs += results.size();
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(total_jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LaneBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FuncSim(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  const Program prog = assemble(bench::mixed_asc_program(512));

  std::uint64_t total_instr = 0;
  for (auto _ : state) {
    FuncSim f(cfg);
    f.load(prog);
    benchmark::DoNotOptimize(f.run());
    total_instr += f.instructions();
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(total_instr), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuncSim)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

// Sweep throughput: a Fig. 4-style thread-count grid (4 machine sizes ×
// 6 thread counts) dispatched across a worker pool. jobs/s at rising
// worker counts measures the sweep runner's scaling on this host; on a
// single-core container all worker counts collapse to the same rate.
void BM_Sweep(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  const std::string src = bench::reduction_chain_program(512);
  std::vector<SweepJob> jobs;
  for (const std::uint32_t p : {16u, 64u, 256u, 1024u})
    for (const std::uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u}) {
      MachineConfig cfg;
      cfg.num_pes = p;
      cfg.word_width = 16;
      cfg.num_threads = t;
      jobs.push_back(bench::make_job(cfg, src));
    }

  std::uint64_t total_jobs = 0;
  for (auto _ : state) {
    const auto results = SweepRunner(workers).run(jobs);
    benchmark::DoNotOptimize(results.data());
    total_jobs += results.size();
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(total_jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Result-cache repeat-job latency (docs/PERF.md "Result cache"): the
// same single job dispatched through a SweepRunner over and over, with
// the cache off (range(0)=0 — every iteration re-simulates) or on
// (range(0)=1 — every iteration after the first is a lookup). The ratio
// of the two times is the cache's headline speedup; the acceptance bar
// is >= 20x.
void BM_CacheHit(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  MachineConfig cfg;
  cfg.num_pes = 256;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  const std::vector<SweepJob> jobs = {
      bench::make_job(cfg, bench::mixed_asc_program(512))};

  SweepRunner runner(1);
  auto cache = std::make_shared<SweepResultCache>(64u << 20, 16);
  if (cached) {
    runner.set_cache(cache);
    benchmark::DoNotOptimize(runner.run(jobs));  // warm: first run inserts
  }
  std::uint64_t total_jobs = 0;
  for (auto _ : state) {
    const auto results = runner.run(jobs);
    benchmark::DoNotOptimize(results.data());
    total_jobs += results.size();
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(total_jobs), benchmark::Counter::kIsRate);
  if (cached) {
    const auto cs = cache->stats();
    state.counters["cache_hits"] = static_cast<double>(cs.hits);
  }
}
BENCHMARK(BM_CacheHit)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Tiered-cache latency curve (docs/CACHE.md "Benchmarks"): the same job
// served from each tier of the result cache. range(0) selects the tier:
//   0  miss — no cache attached, every iteration re-simulates;
//   1  L1 hit — warmed RAM LRU, the sharded-map fast path;
//   2  L2 hit — the L1 is 1 byte so promotions never stick and every
//      lookup is a real segment pread + checksum + decode from a disk
//      store in a temp dir;
//   3  peer hit — a `cache_get` round-trip against an in-process
//      serve::Server plus base64 and record decode, i.e. the work the
//      router's peer read-through does per diverted job.
// The tier-to-tier ratios are the numbers docs/CACHE.md quotes for "how
// much does each fallback cost".
void BM_CacheTier(benchmark::State& state) {
  const long tier = state.range(0);
  MachineConfig cfg;
  cfg.num_pes = 256;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  const std::string src = bench::mixed_asc_program(512);
  const std::vector<SweepJob> jobs = {bench::make_job(cfg, src)};

  std::uint64_t total_jobs = 0;
  if (tier == 3) {
    serve::ServerOptions sopts;
    sopts.port = 0;
    sopts.workers = 1;
    sopts.cache_bytes = 64u << 20;
    serve::Server server(sopts);
    server.start();
    serve::Client c;
    c.connect("127.0.0.1", server.port());
    const std::string job_json =
        "{\"config\":{\"pes\":256,\"threads\":16,\"width\":16},"
        "\"program\":{\"source\":\"" + json_escape(src) + "\"}}";
    // Warm the server's cache with one real run, then hammer cache_get
    // with the job's content key — exactly what a peer router does.
    const json::Value sub =
        c.request("{\"op\":\"submit\",\"jobs\":[" + job_json + "]}");
    const std::uint64_t id = sub.find("ids")->as_array()[0].as_uint();
    const json::Value res = c.request(
        "{\"op\":\"result\",\"id\":" + std::to_string(id) +
        ",\"wait\":true,\"timeout_ms\":60000}");
    const std::string key =
        to_hex(sweep_cache_key(serve::job_from_json(parse_json(job_json))));
    if (!res.get_bool("ok", false)) {
      std::fprintf(stderr, "BM_CacheTier: warm-up submit failed\n");
      std::exit(1);
    }
    for (auto _ : state) {
      const json::Value resp = c.request(
          "{\"op\":\"cache_get\",\"key\":\"" + key + "\"}");
      CachedSweepRun run;
      if (!resp.get_bool("found", false) ||
          !decode_cached_run(base64_decode(resp.get_string("payload", "")),
                             run)) {
        std::fprintf(stderr, "BM_CacheTier: peer tier lost the record\n");
        std::exit(1);
      }
      benchmark::DoNotOptimize(run.stats.cycles);
      ++total_jobs;
    }
  } else {
    std::string dir;
    {
      SweepRunner runner(1);
      std::shared_ptr<SweepResultCache> cache;
      if (tier == 1) {
        cache = std::make_shared<SweepResultCache>(64u << 20, 16);
      } else if (tier == 2) {
        dir = "/tmp/masc_bench_l2_" + std::to_string(::getpid());
        std::system(("rm -rf '" + dir + "'").c_str());
        cache = std::make_shared<SweepResultCache>(1, 1);  // L1 can't hold it
        CacheStoreOptions copts;
        copts.dir = dir;
        auto store = std::make_unique<CacheStore>(copts);
        store->open();
        cache->attach_disk(std::move(store));
      }
      if (cache) {
        runner.set_cache(cache);
        benchmark::DoNotOptimize(runner.run(jobs));  // warm: inserts
        cache->drain_writes();  // tier 2: the record must be on disk
      }
      for (auto _ : state) {
        const auto results = runner.run(jobs);
        benchmark::DoNotOptimize(results.data());
        total_jobs += results.size();
      }
      if (cache) {
        const auto cs = cache->stats();
        state.counters["l1_hits"] = static_cast<double>(cs.l1_hits);
        state.counters["l2_hits"] = static_cast<double>(cs.l2_hits);
        if (tier == 2 && cs.l2_hits == 0) {
          std::fprintf(stderr, "BM_CacheTier: disk tier never hit\n");
          std::exit(1);
        }
      }
    }  // runner + cache destroyed: the store's dir lock is released
    if (!dir.empty()) std::system(("rm -rf '" + dir + "'").c_str());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(total_jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheTier)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// Wire-level cache-hit serving rate (docs/NET.md "Benchmarks"): the
// same warmed record fetched from an in-process serve::Server over
// loopback TCP, range(0) selecting the protocol:
//   0  v1 baseline — one blocking JSON cache_get round-trip per
//      request, base64 payload decoded each time (the pre-v2 peer
//      read-through unit of work);
//   1  v2 — negotiated binary cache_get frames pipelined in 128-deep
//      bursts with batched sends on both sides (Client::set_pipelining
//      + the event loop's corked batch writes), the raw record bytes
//      decoded from each response.
// On this single-vCPU host v2's win is pure protocol: ~2 syscalls per
// 128 requests instead of a blocking round-trip each, and zero
// JSON/base64 on the hot path. Before timing, the v2 record is checked
// byte-identical to the v1 payload — the bench refuses to measure a
// path that serves different bytes. Acceptance: >= 10x requests/s.
void BM_ServeHit(benchmark::State& state) {
  const bool v2_pipelined = state.range(0) != 0;
  MachineConfig cfg;
  cfg.num_pes = 256;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  const std::string src = bench::mixed_asc_program(512);

  serve::ServerOptions sopts;
  sopts.port = 0;
  sopts.workers = 1;
  sopts.cache_bytes = 64u << 20;
  serve::Server server(sopts);
  server.start();
  serve::Client c;
  c.connect("127.0.0.1", server.port());
  const std::string job_json =
      "{\"config\":{\"pes\":256,\"threads\":16,\"width\":16},"
      "\"program\":{\"source\":\"" + json_escape(src) + "\"}}";
  const json::Value sub =
      c.request("{\"op\":\"submit\",\"jobs\":[" + job_json + "]}");
  const std::uint64_t id = sub.find("ids")->as_array()[0].as_uint();
  const json::Value res = c.request(
      "{\"op\":\"result\",\"id\":" + std::to_string(id) +
      ",\"wait\":true,\"timeout_ms\":60000}");
  if (!res.get_bool("ok", false)) {
    std::fprintf(stderr, "BM_ServeHit: warm-up submit failed\n");
    std::exit(1);
  }
  const Hash128 key = sweep_cache_key(serve::job_from_json(parse_json(job_json)));
  const std::string key_hex = to_hex(key);

  // Bit-identity gate: both protocols must serve the same record bytes.
  const json::Value v1_hit =
      c.request("{\"op\":\"cache_get\",\"key\":\"" + key_hex + "\"}");
  const std::string v1_blob = base64_decode(v1_hit.get_string("payload", ""));
  if (c.negotiate() != 2) {
    std::fprintf(stderr, "BM_ServeHit: server refused v2\n");
    std::exit(1);
  }
  std::string v2_blob;
  if (!c.cache_get_v2(key, &v2_blob) || v2_blob != v1_blob ||
      v1_blob.empty()) {
    std::fprintf(stderr, "BM_ServeHit: v2 record NOT bit-identical to v1\n");
    std::exit(1);
  }

  std::uint64_t total_requests = 0;
  if (v2_pipelined) {
    const std::string cache_get_body = std::string(
        std::string_view(serve::v2::encode_cache_get_request(0, key))
            .substr(serve::v2::kHeaderBytes));
    constexpr std::size_t kWindow = 128;
    std::size_t in_flight = 0;
    std::string record;
    // Batch the window's sends into one syscall (and let the server
    // cork the matching responses) — the point of the pipelined path.
    // Bursts, not one-in-one-out: recv_v2 flushes pending sends, so a
    // steady-state top-up of 1 would degenerate to a send per request.
    c.set_pipelining(true);
    for (auto _ : state) {
      if (in_flight == 0) {
        while (in_flight < kWindow) {
          c.send_v2(serve::v2::Op::kCacheGet, cache_get_body);
          ++in_flight;
        }
      }
      const serve::Client::V2Response r = c.recv_v2();
      --in_flight;
      if (!r.ok ||
          !serve::v2::decode_cache_get_response(r.body, r.request_id,
                                                &record)) {
        std::fprintf(stderr, "BM_ServeHit: pipelined hit went missing\n");
        std::exit(1);
      }
      benchmark::DoNotOptimize(record.data());
      ++total_requests;
    }
    while (in_flight--) benchmark::DoNotOptimize(c.recv_v2().ok);
  } else {
    const std::string req = "{\"op\":\"cache_get\",\"key\":\"" + key_hex + "\"}";
    for (auto _ : state) {
      const json::Value resp = c.request(req);
      CachedSweepRun run;
      if (!resp.get_bool("found", false) ||
          !decode_cached_run(base64_decode(resp.get_string("payload", "")),
                             run)) {
        std::fprintf(stderr, "BM_ServeHit: v1 hit went missing\n");
        std::exit(1);
      }
      benchmark::DoNotOptimize(run.stats.cycles);
      ++total_requests;
    }
  }
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeHit)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// Multi-chip fabric host cost (docs/MULTICHIP.md): K chips in cycle-
// lockstep, each looping {local tree reduction -> inter-chip allreduce-
// SUM -> spin on ACK}. Args are chips/pes/sim_threads. Like BM_CycleSimMT,
// the setup refuses to measure an unverified parallel path: a serial-pool
// fabric and a pooled fabric run the same workload and their checkpoint
// blobs (fabric::Fabric::save_state — round counter, ACK sequence,
// pending collective, stats, and every chip's full state) must be
// byte-identical before timing starts. sim_cycles/s counts *fleet*
// cycles, so the host cost of simulating K chips for the same wall of
// machine time shows up directly as a K-fold rate drop.
std::string fabric_collective_program(unsigned iters) {
  const fabric::FabricConfig defaults;
  return R"(
    li r4, )" + std::to_string(defaults.mailbox_base) + R"(
    lw r10, 5(r4)       # NUM_CHIPS (0 on a bare Machine)
    pindex p1
    li r6, 64           # payload address
    li r1, 0
    li r2, )" + std::to_string(iters) + R"(
loop:
    rsum r3, p1         # intra-chip reduction tree
    sw r3, 0(r6)
    li r5, 1
    bleu r10, r5, skip  # single chip: no fabric traffic
    sw r6, 1(r4)        # ADDR
    sw r5, 2(r4)        # COUNT = 1
    lw r7, 3(r4)
    addi r7, r7, 1      # expected ACK
    li r3, 3
    sw r3, 0(r4)        # REQ = sum, posted last
wait:
    lw r3, 3(r4)
    bne r3, r7, wait
skip:
    addi r1, r1, 1
    bne r1, r2, loop
    halt
)";
}

void BM_Fabric(benchmark::State& state) {
  const auto chips = static_cast<std::uint32_t>(state.range(0));
  const auto pes = static_cast<std::uint32_t>(state.range(1));
  const auto sim_threads = static_cast<std::uint32_t>(state.range(2));
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  cfg.sim_threads = sim_threads;
  fabric::FabricConfig fab;
  fab.chips = chips;
  const Program prog = assemble(fabric_collective_program(64));

  {
    // Bit-identity gate: the pooled fleet must checkpoint byte-for-byte
    // identically to the serial fleet (also run standalone by the
    // bench_fabric_smoke ctest entry at sim_threads=2).
    MachineConfig serial_cfg = cfg;
    serial_cfg.sim_threads = 1;
    fabric::Fabric serial(serial_cfg, fab), pooled(cfg, fab);
    serial.load(prog);
    pooled.load(prog);
    serial.run(10'000'000);
    pooled.run(10'000'000);
    if (serial.save_state() != pooled.save_state()) {
      std::fprintf(stderr,
                   "BM_Fabric: pooled fleet NOT bit-identical at chips=%u "
                   "p=%u sim_threads=%u\n", chips, pes, sim_threads);
      std::exit(1);
    }
  }

  Cycle total_cycles = 0;
  for (auto _ : state) {
    fabric::Fabric f(cfg, fab);
    f.load(prog);
    benchmark::DoNotOptimize(f.run(10'000'000));
    total_cycles += f.fleet_stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
  state.counters["cycles/run"] =
      static_cast<double>(total_cycles) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Fabric)
    ->Args({1, 16, 1})->Args({2, 16, 1})->Args({4, 16, 1})->Args({8, 16, 1})
    ->Args({4, 16, 2})->Args({4, 16, 4})
    ->Args({4, 64, 1})->Args({4, 64, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Assembler(benchmark::State& state) {
  const std::string src = bench::mixed_asc_program(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assemble(src));
  }
}
BENCHMARK(BM_Assembler);

}  // namespace
