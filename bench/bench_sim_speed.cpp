// M1 — simulator host performance (google-benchmark): simulated cycles
// per host-second for the cycle-accurate model and instructions per
// host-second for the functional model, across machine sizes. This is
// the "cycle-accurate simulator runs on a laptop" check.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/funcsim.hpp"

namespace {

using namespace masc;

void BM_CycleSim(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.num_threads = threads;
  cfg.word_width = 16;
  const Program prog = assemble(bench::mixed_asc_program(512));

  Cycle total_cycles = 0;
  for (auto _ : state) {
    Machine m(cfg);
    m.load(prog);
    benchmark::DoNotOptimize(m.run(10'000'000));
    total_cycles += m.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
  state.counters["cycles/run"] =
      static_cast<double>(total_cycles) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CycleSim)
    ->Args({16, 1})
    ->Args({16, 16})
    ->Args({256, 16})
    ->Args({1024, 16})
    ->Unit(benchmark::kMillisecond);

void BM_FuncSim(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.num_threads = 16;
  cfg.word_width = 16;
  const Program prog = assemble(bench::mixed_asc_program(512));

  std::uint64_t total_instr = 0;
  for (auto _ : state) {
    FuncSim f(cfg);
    f.load(prog);
    benchmark::DoNotOptimize(f.run());
    total_instr += f.instructions();
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(total_instr), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuncSim)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_Assembler(benchmark::State& state) {
  const std::string src = bench::mixed_asc_program(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assemble(src));
  }
}
BENCHMARK(BM_Assembler);

}  // namespace
