// Figure 3 reproduction: control unit organization. The figure is
// structural (fetch unit + thread status table, per-thread decode,
// rotating-priority scheduler + instruction status table, scalar
// datapath); we demonstrate each mechanism observably:
//   1. per-thread contexts advance independently (thread status table),
//   2. the scheduler issues one instruction per cycle, rotating among
//      ready threads (fairness),
//   3. the instruction status table (scoreboard) blocks only the hazarded
//      thread, never its peers.
#include <cstdio>

#include "bench_util.hpp"
#include "isa/encoding.hpp"

int main() {
  using namespace masc;

  bench::header("Figure 3 — control unit organization (observable behaviour)",
                "Schaffer & Walker 2007, Fig. 3 / §6.3");

  MachineConfig cfg;
  cfg.num_pes = 16;
  cfg.word_width = 16;
  cfg.num_threads = 4;

  Machine m(cfg);
  m.enable_trace(256);
  m.load(assemble(R"(
main:
    la r1, worker
    tspawn r2, r1
    tspawn r2, r1
    tspawn r2, r1
worker:
    pindex p1
    rsum r3, p1          # reduction hazard for the *next* instruction
    add r4, r4, r3       # ... which only blocks this thread
    addi r5, r5, 1
    addi r5, r5, 2
    texit
)"));
  if (!m.run(100000)) return 1;

  std::printf("\nissue trace (cycle : thread : instruction):\n");
  for (const auto& e : m.trace()) {
    if (e.issue > 40) break;
    std::printf("  %4llu : t%u : %s%s\n",
                static_cast<unsigned long long>(e.issue), e.thread,
                disassemble(e.instr).c_str(),
                e.stalled_on == StallCause::kNone
                    ? ""
                    : (std::string("   [was blocked: ") + to_string(e.stalled_on) +
                       "]").c_str());
  }

  const auto& st = m.stats();
  std::printf("\nscheduler fairness (rotating priority): per-thread issues =");
  for (const auto n : st.issued_by_thread) std::printf(" %llu",
      static_cast<unsigned long long>(n));
  std::printf("\nidle cycles: %llu of %llu (blocked threads were skipped, not "
              "stalled the machine)\n",
              static_cast<unsigned long long>(st.idle_cycles),
              static_cast<unsigned long long>(st.cycles));
  return 0;
}
